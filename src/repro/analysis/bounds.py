"""The paper's I/O bounds (Theorems 4.4 and 4.5) as computable functions.

Parameters follow the standard external-memory model of Aggarwal & Vitter,
as the paper uses them:

* ``N`` - elements in the document,
* ``B`` - elements per block,
* ``M`` - elements that fit in internal memory (so ``m = M/B`` memory
  blocks),
* ``k`` - maximum fan-out,
* ``t`` - NEXSORT's sort threshold, in elements.

These are *asymptotic* bounds; the functions return the bound expression
with all constants 1, which is what the LB benchmark and the bound tests
compare measured I/O counts against (measured <= C * bound for a fixed
small C, and measured >= lower bound / C').
"""

from __future__ import annotations

from math import ceil, log

from ..errors import ReproError


def _check(N: int, B: int, M: int) -> None:
    if N < 1 or B < 1 or M < 1:
        raise ReproError(f"bad model parameters N={N} B={B} M={M}")
    if M < 2 * B:
        raise ReproError(
            f"the model needs at least two memory blocks (M={M}, B={B})"
        )


def _log_base(base: float, value: float) -> float:
    """log_base(value), clamped so degenerate arguments contribute 0."""
    if value <= 1.0 or base <= 1.0:
        return 0.0
    return log(value) / log(base)


def sorting_lower_bound_ios(N: int, B: int, M: int, k: int) -> float:
    """Theorem 4.4: Omega(max{N/B, (N/B) log_{M/B} (k/B)}).

    The number of I/Os any algorithm needs to sort an XML document of N
    elements with maximum fan-out k, in the comparison model.
    """
    _check(N, B, M)
    if k < 0:
        raise ReproError(f"bad fan-out {k}")
    n = N / B
    m = M / B
    return max(n, n * _log_base(m, k / B))


def flat_sorting_lower_bound_ios(N: int, B: int, M: int) -> float:
    """Aggarwal-Vitter: Omega((N/B) log_{M/B} (N/B)) for flat files."""
    _check(N, B, M)
    n = N / B
    m = M / B
    return max(n, n * _log_base(m, n))


def nexsort_upper_bound_ios(
    N: int, B: int, M: int, k: int, t: int | None = None
) -> float:
    """Theorem 4.5: O(N/B + (N/B) log_{M/B} (min{kt, N}/B)).

    ``t`` defaults to ``B`` (one block), the "natural choice" the paper
    analyzes right after the theorem.
    """
    _check(N, B, M)
    if t is None:
        t = B
    if t < 1 or k < 0:
        raise ReproError(f"bad parameters k={k} t={t}")
    n = N / B
    m = M / B
    subtree_cap = min(k * t, N)
    return n + n * _log_base(m, subtree_cap / B)


def merge_sort_ios(N: int, B: int, M: int) -> float:
    """The external merge sort cost: 2 (N/B) * (number of passes).

    Each pass reads and writes the data once; the pass count is
    ``1 + ceil(log_{m-1}(N/M))`` (formation plus merges).
    """
    _check(N, B, M)
    n = N / B
    return 2.0 * n * merge_sort_passes(N, B, M)


def merge_sort_passes(N: int, B: int, M: int) -> int:
    """Passes over the data for a flat external merge sort.

    Exactly ``1 + arge_thorup_merge_depth(N, B, M)``: the formation pass
    plus one pass per merge-tree level.  Both delegate to
    :func:`iterated_merge_depth` so the pass count has a single source of
    truth that cannot drift.
    """
    return 1 + arge_thorup_merge_depth(N, B, M)


def iterated_merge_depth(initial_runs: int, fan_in: int) -> int:
    """``ceil(log_fan_in(initial_runs))`` by iterated ceil-division.

    The one loop behind every pass count in this module: exact at fan-in
    powers where a float log could round either way
    (``ceil(ceil(r/f)/f) = ceil(r/f^2)`` and so on).
    """
    if fan_in < 2 or initial_runs < 1:
        raise ReproError(
            f"bad merge-tree parameters fan_in={fan_in} "
            f"initial_runs={initial_runs}"
        )
    depth = 0
    runs = initial_runs
    while runs > 1:
        runs = -(-runs // fan_in)
        depth += 1
    return depth


def arge_thorup_merge_depth(
    N: int,
    B: int,
    M: int,
    fan_in: int | None = None,
    initial_runs: int | None = None,
) -> int:
    """Merge-tree depth bound for multiway external merging.

    Arge & Thorup ("RAM-efficient external memory sorting", PAPERS.md)
    analyze external sorting as run formation plus a fan-in-``f`` merge
    tree of depth ``ceil(log_f r)`` over ``r`` initial runs - each level
    of the tree is one pass over the data, so this is the number of merge
    passes any fan-in-``f`` merger needs, and the bound an admission
    controller consults when deciding whether a degraded memory grant
    forces extra passes.

    Defaults instantiate the classic geometry: ``r = ceil(N/M)`` runs
    (memory-filling formation) and ``f = M/B - 1`` (one block per input
    run plus an output block).  Pass the *actual* ``fan_in`` /
    ``initial_runs`` of a measured row to get the bound that that row's
    merger provably cannot beat: ``ceil(log_f r)`` equals the iterated
    ceil-division pass count exactly (``ceil(ceil(r/f)/f) = ceil(r/f^2)``
    and so on), so an empirical merge depth below it indicates broken
    accounting, and above it a wasted pass.
    """
    _check(N, B, M)
    m = M // B
    if fan_in is None:
        fan_in = max(2, m - 1)
    if initial_runs is None:
        initial_runs = max(1, ceil(N / M))
    return iterated_merge_depth(initial_runs, fan_in)


def permutation_lower_bound_ios(N: int, B: int, M: int) -> float:
    """Aggarwal-Vitter's permuting bound: Omega(min{N, (N/B) log_{M/B} (N/B)}).

    The paper's conclusion conjectures that NEXSORT's constant-factor gap
    "can be made smaller when k < B and M is small.  In this case, the
    dominating cost is not sorting but permuting the input to generate the
    output ... we will try to improve the lower bound by considering the
    cost of permutation in external memory."  This is the flat-file
    permuting bound that program would start from.
    """
    _check(N, B, M)
    n = N / B
    m = M / B
    return min(float(N), max(n, n * _log_base(m, n)))


def xml_permutation_conjecture_ios(N: int, B: int, M: int, k: int) -> float:
    """The natural XML analogue of the permuting bound (conjectural).

    Replaces the flat bound's ``N/B`` log argument with the XML bound's
    ``k/B`` (Theorem 4.4), keeping the ``min{N, ...}`` element-wise
    escape: Omega(max{n, min{N, n log_{M/B}(k/B)}}).  Marked conjectural:
    the paper leaves proving this as future work; we expose it so the
    bounds bench can show where it would tighten Theorem 4.4.
    """
    _check(N, B, M)
    if k < 0:
        raise ReproError(f"bad fan-out {k}")
    n = N / B
    m = M / B
    return max(n, min(float(N), n * _log_base(m, k / B)))


def bounds_within_constant_factor(
    N: int, B: int, M: int, k: int, alpha: float = 1.5
) -> bool:
    """The Section 4.2 condition for NEXSORT to match the lower bound.

    "The two bounds differ only by a constant factor if k >= B^alpha or
    M >= B^alpha for some constant alpha > 1."
    """
    if alpha <= 1.0:
        raise ReproError(f"alpha must exceed 1, got {alpha}")
    threshold = B**alpha
    return k >= threshold or M >= threshold


def nexsort_over_lower_bound_ratio(
    N: int, B: int, M: int, k: int, t: int | None = None
) -> float:
    """Upper bound / lower bound - the constant-factor gap."""
    lower = sorting_lower_bound_ios(N, B, M, k)
    upper = nexsort_upper_bound_ios(N, B, M, k, t)
    return upper / lower if lower else float("inf")
