"""Counting the possible outcomes of sorting an XML document.

Lemmas 4.1 and 4.2 of the paper: any legal reordering must preserve every
parent-child relationship, so the number of possible sorting outcomes is
the product of the factorials of all fan-outs - far below the flat-file
``N!``.  The adversarial shape (at most one element with neither 0 nor k
children) maximizes that product at ``(k!)^floor((N-1)/k) * ((N-1) mod k)!``.

All counting is done in log-space (``lgamma``), since the real numbers are
astronomically large.
"""

from __future__ import annotations

from math import lgamma, log
from typing import Iterable

from ..errors import ReproError
from ..xml.model import Element

_LOG2 = log(2.0)


def log2_factorial(n: int) -> float:
    """log2(n!) via the log-gamma function."""
    if n < 0:
        raise ReproError(f"factorial of negative {n}")
    return lgamma(n + 1) / _LOG2


def log2_outcomes_from_fanouts(fanouts: Iterable[int]) -> float:
    """log2 of the number of sorting outcomes given all fan-outs.

    "It is easy to see the total number of possible outcomes is the product
    of factorials of all the fan-outs in the document tree" (Lemma 4.2's
    proof).
    """
    return sum(log2_factorial(fanout) for fanout in fanouts)


def fanouts_of(element: Element) -> list[int]:
    """Fan-out of every element in the tree (document order)."""
    return [len(node.children) for node in element.iter()]


def log2_sorting_outcomes(element: Element) -> float:
    """log2 of the number of legal sorted orders of this document."""
    return log2_outcomes_from_fanouts(fanouts_of(element))


def log2_flat_outcomes(element_count: int) -> float:
    """log2(N!) - what a flat file of the same size would allow."""
    return log2_factorial(element_count)


def adversarial_fanouts(element_count: int, max_fanout: int) -> list[int]:
    """The fan-outs of the Lemma 4.1 worst-case document.

    ``floor((N-1)/k)`` elements have exactly ``k`` children and at most one
    has ``(N-1) mod k``; everything else is a leaf.  Leaves (fan-out 0)
    contribute factor 1 and are omitted from the returned list.
    """
    if element_count < 1:
        raise ReproError(f"need at least one element, got {element_count}")
    if max_fanout < 1:
        raise ReproError(f"max fan-out must be >= 1, got {max_fanout}")
    edges = element_count - 1
    full, remainder = divmod(edges, max_fanout)
    fanouts = [max_fanout] * full
    if remainder:
        fanouts.append(remainder)
    return fanouts


def log2_max_outcomes(element_count: int, max_fanout: int) -> float:
    """Lemma 4.2: log2((k!)^floor((N-1)/k) * ((N-1) mod k)!)."""
    return log2_outcomes_from_fanouts(
        adversarial_fanouts(element_count, max_fanout)
    )


def adversarial_tree(element_count: int, max_fanout: int) -> Element:
    """Build a concrete document realizing the Lemma 4.1 shape.

    A chain of internal nodes each with ``k`` children (one of which
    continues the chain), stopping when the element budget runs out - so at
    most one element has neither 0 nor ``k`` children.
    """
    if element_count < 1:
        raise ReproError("need at least one element")
    root = Element("n0", {"name": "0"})
    remaining = element_count - 1
    current = root
    index = 1
    while remaining > 0:
        take = min(max_fanout, remaining)
        children = []
        for _ in range(take):
            children.append(Element("n", {"name": str(index)}))
            index += 1
        current.children = children
        remaining -= take
        current = children[0]
    return root


def rebalance_increases_outcomes(
    fanouts: list[int], max_fanout: int
) -> float:
    """Lemma 4.1's exchange argument as a computable quantity.

    Given two fan-outs ``0 < x <= y < k``, moving one child from x to y
    multiplies the outcome count by ``(y+1)/x > 1``.  Returns the log2
    gain of applying one such move to the two smallest qualifying
    fan-outs, or 0.0 when no move applies (the document is already in the
    Lemma 4.1 shape).
    """
    qualifying = sorted(
        fanout for fanout in fanouts if 0 < fanout < max_fanout
    )
    if len(qualifying) < 2:
        return 0.0
    x, y = qualifying[0], qualifying[-1]
    return (log(y + 1) - log(x)) / _LOG2
