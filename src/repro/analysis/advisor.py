"""Workload profiling and algorithm selection.

The paper's evaluation establishes *when* each algorithm wins: NEXSORT on
hierarchical documents (Figures 5-7), external merge sort on flat ones
(Figure 7 at height 2), with the sort threshold best near twice the block
size.  This module packages those findings as a profiler and an advisor,
so a downstream user can ask "which sorter, with which knobs, for this
document?" and get the paper's answer together with the predicted costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xml.document import Document
from .bounds import (
    merge_sort_ios,
    merge_sort_passes,
    nexsort_upper_bound_ios,
    sorting_lower_bound_ios,
)
from .cost_model import ModelGeometry


@dataclass
class DocumentProfile:
    """Structural statistics of one document."""

    element_count: int
    block_count: int
    height: int
    max_fanout: int
    fanout_p50: float
    fanout_p95: float
    internal_elements: int
    average_element_bytes: float

    @property
    def flatness(self) -> float:
        """Fraction of all elements that are children of the root's level.

        1.0 means a two-level (flat) document; deeply nested documents
        approach ``max_fanout / N``.
        """
        if self.element_count <= 1:
            return 0.0
        return self.max_fanout / (self.element_count - 1)

    @property
    def is_nearly_flat(self) -> bool:
        """The Figure 7 regime where NEXSORT degenerates."""
        return self.height <= 2 or self.flatness > 0.5


def profile_document(document: Document) -> DocumentProfile:
    """Measure a stored document (one counted scan)."""
    fanouts: list[int] = []
    stack: list[int] = []
    from ..xml.tokens import EndTag, StartTag

    for event in document.iter_events("profile_scan"):
        if isinstance(event, StartTag):
            if stack:
                stack[-1] += 1
            stack.append(0)
        elif isinstance(event, EndTag):
            fanouts.append(stack.pop())
    internal = [fanout for fanout in fanouts if fanout > 0]
    ordered = sorted(fanouts)

    def percentile(values: list[int], fraction: float) -> float:
        if not values:
            return 0.0
        index = min(len(values) - 1, int(fraction * len(values)))
        return float(values[index])

    return DocumentProfile(
        element_count=document.element_count,
        block_count=document.block_count,
        height=document.height,
        max_fanout=document.max_fanout,
        fanout_p50=percentile(ordered, 0.50),
        fanout_p95=percentile(ordered, 0.95),
        internal_elements=len(internal),
        average_element_bytes=(
            document.payload_bytes / max(1, document.element_count)
        ),
    )


@dataclass
class Recommendation:
    """The advisor's verdict for one document + memory budget."""

    algorithm: str  # 'nexsort' or 'merge_sort'
    threshold_bytes: int | None
    flat_optimization: bool
    predicted_nexsort_ios: float
    predicted_merge_sort_ios: float
    lower_bound_ios: float
    merge_sort_passes: int
    rationale: list[str] = field(default_factory=list)


def recommend(
    document: Document,
    memory_blocks: int,
    block_size: int | None = None,
) -> Recommendation:
    """Pick the sorter and knobs the paper's evaluation would pick."""
    block = block_size or document.device.block_size
    geometry = ModelGeometry.from_document(document, memory_blocks)
    profile = profile_document(document)

    threshold = 2 * block  # the paper's "roughly twice the block size"
    t_elements = max(1, round(threshold / max(1, profile.average_element_bytes)))
    nexsort_ios = nexsort_upper_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k, t_elements
    )
    merge_ios = merge_sort_ios(geometry.N, geometry.B, geometry.M)
    lower = sorting_lower_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k
    )
    passes = merge_sort_passes(geometry.N, geometry.B, geometry.M)

    rationale: list[str] = []
    if profile.is_nearly_flat:
        rationale.append(
            f"document is nearly flat (height {profile.height}, "
            f"flatness {profile.flatness:.2f}): the Figure 7 regime "
            "where plain NEXSORT wastes its staging pass"
        )
        if passes <= 2:
            rationale.append(
                f"merge sort completes in {passes} pass(es) at this "
                "memory size"
            )
            algorithm = "merge_sort"
            flat_optimization = False
        else:
            rationale.append(
                "memory is tight; NEXSORT with graceful degeneration "
                "forms initial runs like merge sort without the "
                "staging pass"
            )
            algorithm = "nexsort"
            flat_optimization = True
    else:
        rationale.append(
            f"hierarchical document (height {profile.height}, max "
            f"fan-out {profile.max_fanout}): NEXSORT's bound "
            f"{nexsort_ios:.0f} I/Os beats merge sort's "
            f"{merge_ios:.0f}"
            if nexsort_ios < merge_ios
            else f"bounds are close ({nexsort_ios:.0f} vs "
            f"{merge_ios:.0f} I/Os); NEXSORT additionally enables "
            "single-pass structural merge"
        )
        algorithm = "nexsort"
        flat_optimization = profile.flatness > 0.25
        if flat_optimization:
            rationale.append(
                "moderate flatness: enabling graceful degeneration as "
                "insurance"
            )
    rationale.append(
        f"threshold {threshold} bytes (2x block), the paper's setting"
    )
    return Recommendation(
        algorithm=algorithm,
        threshold_bytes=threshold if algorithm == "nexsort" else None,
        flat_optimization=flat_optimization,
        predicted_nexsort_ios=nexsort_ios,
        predicted_merge_sort_ios=merge_ios,
        lower_bound_ios=lower,
        merge_sort_passes=passes,
        rationale=rationale,
    )
