"""Workload profiling and algorithm selection.

The paper's evaluation establishes *when* each algorithm wins: NEXSORT on
hierarchical documents (Figures 5-7), external merge sort on flat ones
(Figure 7 at height 2), with the sort threshold best near twice the block
size.  This module packages those findings as a profiler and an advisor,
so a downstream user can ask "which sorter, with which knobs, for this
document?" and get the paper's answer together with the predicted costs.

The advisor answers the paper's narrow Figure-7 question; the full
knob-grid planner built on top of the same :class:`DocumentProfile`
lives in :mod:`repro.analysis.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from ..errors import ReproError
from ..xml.document import Document
from .bounds import (
    merge_sort_ios,
    merge_sort_passes,
    nexsort_upper_bound_ios,
    sorting_lower_bound_ios,
)
from .cost_model import ModelGeometry

#: Encoded bytes of a padless generated element - header, tag, key
#: attribute.  The same estimate admission control uses before any bytes
#: are staged; profiles built from real documents measure it instead.
BASE_ELEMENT_BYTES = 45


def nearest_rank_percentile(values, fraction: float) -> float:
    """Standard nearest-rank percentile: index ``ceil(f * n) - 1``.

    ``values`` must already be sorted.  The previous ``int(f * n)``
    truncation was off by one: p95 of a 20-sample list returned the
    maximum, and p50 of two values returned the larger.
    """
    if not values:
        return 0.0
    index = ceil(fraction * len(values)) - 1
    return float(values[min(len(values) - 1, max(0, index))])


@dataclass
class DocumentProfile:
    """Structural statistics of one document.

    ``level_subtree_elements[d]`` is the mean subtree element count of a
    node at depth ``d`` (root = depth 0, so index 0 equals
    ``element_count``); the planner reads the sort-unit size - the
    smallest level whose subtrees exceed the threshold - straight off it.
    """

    element_count: int
    block_count: int
    height: int
    max_fanout: int
    fanout_p50: float
    fanout_p95: float
    internal_elements: int
    average_element_bytes: float
    level_subtree_elements: tuple[float, ...] = ()

    @property
    def flatness(self) -> float:
        """Fraction of all elements that are children of the root's level.

        1.0 means a two-level (flat) document; deeply nested documents
        approach ``max_fanout / N``.
        """
        if self.element_count <= 1:
            return 0.0
        return self.max_fanout / (self.element_count - 1)

    @property
    def is_nearly_flat(self) -> bool:
        """The Figure 7 regime where NEXSORT degenerates."""
        return self.height <= 2 or self.flatness > 0.5

    @classmethod
    def from_fanouts(
        cls,
        fanouts,
        pad_bytes: int = 0,
        block_size: int = 4096,
        element_bytes: float | None = None,
    ) -> "DocumentProfile":
        """Analytic profile of a ``level_fanout_events`` document.

        The exact shape is a pure function of the per-level fan-outs, so
        admission control and the planner benches can profile a workload
        before a single byte is staged.  ``element_bytes`` overrides the
        ``BASE_ELEMENT_BYTES + pad`` estimate when the real encoded size
        is known (e.g. from a recorded benchmark row).
        """
        fanouts = list(fanouts)
        if not fanouts or any(f < 1 for f in fanouts):
            raise ReproError(f"fan-outs must be positive: {fanouts}")
        # Mean subtree sizes per depth, leaves up: s_L = 1,
        # s_d = 1 + f_{d+1} * s_{d+1}.
        sizes = [1.0]
        for fanout in reversed(fanouts):
            sizes.append(1.0 + fanout * sizes[-1])
        sizes.reverse()
        element_count = int(sizes[0])
        # Fan-out multiset: prod(f_1..f_d) nodes at depth d have fan-out
        # f_{d+1}; the deepest level's nodes are leaves (fan-out 0).
        weighted = []
        nodes = 1
        for fanout in fanouts:
            weighted.append((fanout, nodes))
            nodes *= fanout
        weighted.append((0, nodes))
        weighted.sort()
        total = sum(count for _, count in weighted)

        def weighted_percentile(fraction: float) -> float:
            rank = max(1, ceil(fraction * total))
            seen = 0
            for value, count in weighted:
                seen += count
                if seen >= rank:
                    return float(value)
            return float(weighted[-1][0])

        bytes_per = (
            element_bytes
            if element_bytes is not None
            else float(BASE_ELEMENT_BYTES + max(0, pad_bytes))
        )
        return cls(
            element_count=element_count,
            block_count=max(1, ceil(element_count * bytes_per / block_size)),
            height=len(fanouts) + 1,
            max_fanout=max(fanouts),
            fanout_p50=weighted_percentile(0.50),
            fanout_p95=weighted_percentile(0.95),
            internal_elements=sum(
                count for value, count in weighted if value > 0
            ),
            average_element_bytes=bytes_per,
            level_subtree_elements=tuple(sizes),
        )


def profile_document(document: Document) -> DocumentProfile:
    """Measure a stored document (one counted scan)."""
    fanouts: list[int] = []
    stack: list[int] = []
    elements: list[int] = []
    depth_sums: list[float] = []
    depth_counts: list[int] = []
    from ..xml.tokens import EndTag, StartTag

    for event in document.iter_events("profile_scan"):
        if isinstance(event, StartTag):
            if stack:
                stack[-1] += 1
            stack.append(0)
            elements.append(1)
        elif isinstance(event, EndTag):
            fanouts.append(stack.pop())
            subtree = elements.pop()
            depth = len(elements)
            while len(depth_sums) <= depth:
                depth_sums.append(0.0)
                depth_counts.append(0)
            depth_sums[depth] += subtree
            depth_counts[depth] += 1
            if elements:
                elements[-1] += subtree
    internal = [fanout for fanout in fanouts if fanout > 0]
    ordered = sorted(fanouts)

    return DocumentProfile(
        element_count=document.element_count,
        block_count=document.block_count,
        height=document.height,
        max_fanout=document.max_fanout,
        fanout_p50=nearest_rank_percentile(ordered, 0.50),
        fanout_p95=nearest_rank_percentile(ordered, 0.95),
        internal_elements=len(internal),
        average_element_bytes=(
            document.payload_bytes / max(1, document.element_count)
        ),
        level_subtree_elements=tuple(
            depth_sums[d] / depth_counts[d]
            for d in range(len(depth_sums))
            if depth_counts[d]
        ),
    )


@dataclass
class Recommendation:
    """The advisor's verdict for one document + memory budget."""

    algorithm: str  # 'nexsort' or 'merge_sort'
    threshold_bytes: int | None
    flat_optimization: bool
    predicted_nexsort_ios: float
    predicted_merge_sort_ios: float
    lower_bound_ios: float
    merge_sort_passes: int
    rationale: list[str] = field(default_factory=list)


def recommend(
    document: Document,
    memory_blocks: int,
    block_size: int | None = None,
) -> Recommendation:
    """Pick the sorter and knobs the paper's evaluation would pick.

    ``block_size`` defaults to the device's own; passing one explicitly
    must agree with the device (the model geometry is derived from blocks
    the device actually stores), and zero/negative sizes are errors
    rather than a silent fallback.
    """
    if block_size is None:
        block = document.device.block_size
    else:
        if block_size <= 0:
            raise ReproError(
                f"block_size must be positive, got {block_size}"
            )
        if block_size != document.device.block_size:
            raise ReproError(
                f"block_size {block_size} does not match the document "
                f"device's {document.device.block_size}"
            )
        block = block_size
    geometry = ModelGeometry.from_document(document, memory_blocks)
    profile = profile_document(document)

    threshold = 2 * block  # the paper's "roughly twice the block size"
    t_elements = max(1, round(threshold / max(1, profile.average_element_bytes)))
    nexsort_ios = nexsort_upper_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k, t_elements
    )
    merge_ios = merge_sort_ios(geometry.N, geometry.B, geometry.M)
    lower = sorting_lower_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k
    )
    passes = merge_sort_passes(geometry.N, geometry.B, geometry.M)

    rationale: list[str] = []
    if profile.is_nearly_flat:
        rationale.append(
            f"document is nearly flat (height {profile.height}, "
            f"flatness {profile.flatness:.2f}): the Figure 7 regime "
            "where plain NEXSORT wastes its staging pass"
        )
        if passes <= 2:
            rationale.append(
                f"merge sort completes in {passes} pass(es) at this "
                "memory size"
            )
            algorithm = "merge_sort"
            flat_optimization = False
        else:
            rationale.append(
                "memory is tight; NEXSORT with graceful degeneration "
                "forms initial runs like merge sort without the "
                "staging pass"
            )
            algorithm = "nexsort"
            flat_optimization = True
    else:
        rationale.append(
            f"hierarchical document (height {profile.height}, max "
            f"fan-out {profile.max_fanout}): NEXSORT's bound "
            f"{nexsort_ios:.0f} I/Os beats merge sort's "
            f"{merge_ios:.0f}"
            if nexsort_ios < merge_ios
            else f"bounds are close ({nexsort_ios:.0f} vs "
            f"{merge_ios:.0f} I/Os); NEXSORT additionally enables "
            "single-pass structural merge"
        )
        algorithm = "nexsort"
        flat_optimization = profile.flatness > 0.25
        if flat_optimization:
            rationale.append(
                "moderate flatness: enabling graceful degeneration as "
                "insurance"
            )
    rationale.append(
        f"threshold {threshold} bytes (2x block), the paper's setting"
    )
    return Recommendation(
        algorithm=algorithm,
        threshold_bytes=threshold if algorithm == "nexsort" else None,
        flat_optimization=flat_optimization,
        predicted_nexsort_ios=nexsort_ios,
        predicted_merge_sort_ios=merge_ios,
        lower_bound_ios=lower,
        merge_sort_passes=passes,
        rationale=rationale,
    )
