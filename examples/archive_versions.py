"""Archiving document versions with nested merge (related work, §2).

Buneman et al. archive scientific data by nested-merging each new version
of a document into a growing archive; every element remembers the versions
it appeared in.  The operation "needs to sort the input documents at every
level" - which is exactly what NEXSORT provides at scale.

Run with:  python examples/archive_versions.py
"""

from repro import (
    BlockDevice,
    ByAttribute,
    ByAttributes,
    Document,
    Element,
    RunStore,
    SortSpec,
)
from repro.merge import XMLArchive

# Readings carry their value as an attribute: in the deterministic model
# of Buneman et al., a value is part of an element's identity, so a
# changed reading is a *different* archived element.
VERSION_1 = """
<observatory name="ridge">
  <station name="alpha">
    <sensor name="temp" value="18.2"/>
    <sensor name="wind" value="4.1"/>
  </station>
  <station name="beta">
    <sensor name="temp" value="17.9"/>
  </station>
</observatory>
"""

VERSION_2 = """
<observatory name="ridge">
  <station name="alpha">
    <sensor name="temp" value="18.4"/>
    <sensor name="rain" value="0.2"/>
  </station>
  <station name="gamma">
    <sensor name="temp" value="16.0"/>
  </station>
</observatory>
"""

VERSION_3 = """
<observatory name="ridge">
  <station name="beta">
    <sensor name="temp" value="18.0"/>
  </station>
  <station name="gamma">
    <sensor name="temp" value="15.8"/>
    <sensor name="wind" value="9.9"/>
  </station>
</observatory>
"""


def main() -> None:
    device = BlockDevice(block_size=4096)
    store = RunStore(device)
    spec = SortSpec(
        default=ByAttribute("name", missing_uses_tag=True),
        rules={"sensor": ByAttributes(("name", "value"))},
    )

    archive = XMLArchive(spec, memory_blocks=8)
    for version_id, text in enumerate(
        (VERSION_1, VERSION_2, VERSION_3), start=1
    ):
        document = Document.from_string(store, text)
        archive.add_version(document, version_id)
        print(f"archived version {version_id} "
              f"({document.element_count} elements)")

    print("\nthe archive (every element carries its version set):")
    print(archive.document.to_string(indent="  "))

    print("reconstructing version 2 from the archive:")
    snapshot = archive.snapshot(2)
    print(snapshot.to_string(indent="  "))

    original = Element.parse(VERSION_2)
    same_content = (
        snapshot.to_element().unordered_canonical()
        == original.unordered_canonical()
    )
    print(f"snapshot matches the original version 2: {same_content}")
    print(f"total block I/Os for the whole session: "
          f"{device.stats.total_ios}")


if __name__ == "__main__":
    main()
