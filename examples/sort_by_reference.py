"""Ordering through IDREFs - the paper's future work, implemented.

The paper (§3.2) notes that its single-pass key evaluation "does not work
... if the ordering expression references data other than e's descendents
and ancestors (e.g., an XPath expression that follows IDREFs).  We plan to
investigate such ordering expressions as future work."

This example sorts employees by *their manager's name*, where the manager
is reachable only through an IDREF.  The resolution is an external
semi-join (two extra passes over the document plus sorts of the small
reference streams), after which ordinary NEXSORT takes over.

Run with:  python examples/sort_by_reference.py
"""

from repro import BlockDevice, ByAttribute, Document, RunStore, SortSpec
from repro.core import ByIdRef, nexsort_with_idrefs

XML = """
<org name="acme">
  <managers name="managers">
    <person id="m1" name="Walker"/>
    <person id="m2" name="Adams"/>
    <person id="m3" name="Nguyen"/>
  </managers>
  <employees name="employees">
    <employee badge="1" managerRef="m3"/>
    <employee badge="2" managerRef="m1"/>
    <employee badge="3" managerRef="m2"/>
    <employee badge="4" managerRef="m1"/>
  </employees>
</org>
"""


def main() -> None:
    device = BlockDevice(block_size=4096)
    store = RunStore(device)
    document = Document.from_string(store, XML)

    spec = SortSpec(
        default=ByAttribute("name", missing_uses_tag=True),
        rules={
            # Sort employees by the NAME of the person their managerRef
            # points at - data far outside each employee's subtree.
            "employee": ByIdRef("managerRef", id_attribute="id"),
            "person": ByAttribute("name"),
        },
    )

    result, report = nexsort_with_idrefs(document, spec, memory_blocks=8)

    print("sorted by manager name (Adams < Nguyen < Walker):")
    print(result.to_string(indent="  "))
    print(f"total block I/Os (resolution passes included): "
          f"{device.stats.total_ios}")
    print(f"NEXSORT subtree sorts: {report.x}")


if __name__ == "__main__":
    main()
