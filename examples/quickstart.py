"""Quickstart: sort an XML document with NEXSORT.

Run with:  python examples/quickstart.py
"""

from repro import BlockDevice, Document, RunStore, SortSpec, nexsort

XML = """
<library>
  <shelf name="S2">
    <book title="Zen and the Art"><author>Pirsig</author></book>
    <book title="Anna Karenina"><author>Tolstoy</author></book>
  </shelf>
  <shelf name="S1">
    <book title="Middlemarch"><author>Eliot</author></book>
    <book title="Beloved"><author>Morrison</author></book>
    <book title="Hamlet"><author>Shakespeare</author></book>
  </shelf>
</library>
"""


def main() -> None:
    # Everything external-memory happens on a simulated block device that
    # counts every block access (the paper's primary metric).
    device = BlockDevice(block_size=4096)
    store = RunStore(device)

    # Put the document on the device.
    document = Document.from_string(store, XML)
    print(f"loaded: {document}")

    # Order shelves by their name attribute and books by their title; a
    # fully sorted document orders the children of EVERY element.
    spec = SortSpec.by_attribute("name", book="title")

    # Sort with NEXSORT under a 16-block memory budget.
    sorted_document, report = nexsort(document, spec, memory_blocks=16)

    print("\nsorted document:")
    print(sorted_document.to_string(indent="  "))

    print("what NEXSORT did:")
    print(f"  subtree sorts (x):        {report.x}")
    print(f"  sum of subtree sizes:     {report.sum_si} "
          f"(= N - 1 + x = {report.element_count - 1 + report.x})")
    print(f"  total block I/Os:         {report.total_ios}")
    print(f"  simulated sort time:      {report.simulated_seconds:.4f} s")
    print(f"  I/O breakdown:            {report.io_breakdown()}")


if __name__ == "__main__":
    main()
