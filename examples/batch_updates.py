"""Batch updates to a sorted document (paper Section 1).

"We first sort the batch of updates according to the same ordering
criterion as the existing document.  Then, we can process the batched
updates in a way similar to merging them with the existing document.
The result document remains sorted."

Run with:  python examples/batch_updates.py
"""

from repro import BlockDevice, Document, Element, RunStore, nexsort
from repro.baselines import is_fully_sorted
from repro.generators import figure1_d1, figure1_spec
from repro.merge import apply_batch

BATCH = """
<company>
  <region name="AC">
    <branch name="Durham">
      <employee ID="454" op="delete"/>
      <employee ID="777">
        <name>Nguyen</name>
        <phone>5550000</phone>
      </employee>
      <employee ID="323" grade="senior"/>
    </branch>
  </region>
  <region name="MW">
    <branch name="Chicago"/>
  </region>
</company>
"""


def main() -> None:
    device = BlockDevice(block_size=4096)
    store = RunStore(device)
    spec = figure1_spec()

    # The existing document, already sorted (the paper's precondition).
    base, _ = nexsort(
        Document.from_element(store, figure1_d1()), spec, memory_blocks=8
    )
    print("existing (sorted) document:")
    print(base.to_string(indent="  "))

    # The batch: one delete, one insert, one in-place update, and a brand
    # new region.  It gets sorted with NEXSORT, then merged in one pass.
    batch = Document.from_string(store, BATCH)
    print("batch of updates:")
    print(batch.to_string(indent="  "))

    result, report = apply_batch(base, batch, spec, memory_blocks=8)

    print("document after the batch:")
    print(result.to_string(indent="  "))
    print(f"upserts applied:   {report.upserts}")
    print(f"deletes applied:   {report.deletes}")
    print(f"deletes that missed: {report.missed_deletes}")
    print(f"result is still fully sorted: "
          f"{is_fully_sorted(result.to_element(), spec)}")
    print(f"block I/Os (sorting the batch included): {report.total_ios}")


if __name__ == "__main__":
    main()
