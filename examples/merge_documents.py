"""Example 1.1 / Figure 1: merging two XML documents.

The personnel department's document (D1) and the payroll department's
document (D2) describe the same company.  Sorting both under the same
criterion lets a single-pass structural merge combine matching employees -
the XML analogue of sort-merge join.  The naive nested-loop merge gives
the same answer with a far worse I/O pattern.

Run with:  python examples/merge_documents.py
"""

from repro import BlockDevice, Document, RunStore, nexsort
from repro.generators import (
    figure1_d1,
    figure1_d2,
    figure1_merged,
    figure1_spec,
)
from repro.merge import nested_loop_merge, structural_merge


def main() -> None:
    device = BlockDevice(block_size=4096)
    store = RunStore(device)

    d1 = Document.from_element(store, figure1_d1())
    d2 = Document.from_element(store, figure1_d2())
    spec = figure1_spec()  # regions/branches by name, employees by ID

    print("D1 (personnel):")
    print(d1.to_string(indent="  "))
    print("D2 (payroll):")
    print(d2.to_string(indent="  "))

    # Step 1: sort both documents down to the employee level (level 3) -
    # below that "no overlap of information is possible", so Figure 1
    # keeps name/phone/salary/bonus in document order.
    before = device.stats.snapshot()
    sorted_d1, _ = nexsort(d1, spec, memory_blocks=8, depth_limit=3)
    sorted_d2, _ = nexsort(d2, spec, memory_blocks=8, depth_limit=3)

    # Step 2: merge in a single pass over both sorted documents.
    merged, merge_report = structural_merge(
        sorted_d1, sorted_d2, spec, depth_limit=3
    )
    pipeline = device.stats.since(before)

    print("merged document (sort + single-pass merge):")
    print(merged.to_string(indent="  "))
    matches = merged.to_element() == figure1_merged()
    print(f"matches the paper's Figure 1 result: {matches}\n")

    # The naive alternative: nested-loop merge of the unsorted inputs.
    before = device.stats.snapshot()
    naive, naive_report = nested_loop_merge(d1, d2, spec)
    nested = device.stats.since(before)

    same = (
        naive.to_element().unordered_canonical()
        == merged.to_element().unordered_canonical()
    )
    print(f"nested-loop merge gives the same content: {same}")
    print(f"  sort+merge pipeline: {pipeline.total_ios:4d} block I/Os "
          f"({merge_report.elements_merged} elements merged)")
    print(f"  nested-loop merge:   {nested.total_ios:4d} block I/Os "
          f"({naive_report.right_rescans} rescans of D2 regions)")
    print("\nOn documents this tiny the gap is small; run "
          "benchmarks/bench_merge.py to watch it diverge with size.")


if __name__ == "__main__":
    main()
