"""Measured I/O against the paper's Section 4 analysis.

Generates a document, sorts it with NEXSORT and with external merge sort,
and lines the measured block I/Os up against the Theorem 4.4 lower bound,
the Theorem 4.5 NEXSORT bound, and the merge-sort pass model.

Run with:  python examples/io_analysis.py
"""

from repro import BlockDevice, Document, RunStore, SortSpec, ByAttribute
from repro import external_merge_sort, nexsort
from repro.analysis import (
    ModelGeometry,
    bounds_within_constant_factor,
    log2_flat_outcomes,
    log2_sorting_outcomes,
    merge_sort_passes,
    nexsort_upper_bound_ios,
    sorting_lower_bound_ios,
)
from repro.generators import level_fanout_events


def main() -> None:
    spec = SortSpec(default=ByAttribute("name"))

    device = BlockDevice(block_size=512)
    store = RunStore(device)
    document = Document.from_events(
        store, level_fanout_events([13, 13, 13], seed=1, pad_bytes=24)
    )
    memory_blocks = 24
    geometry = ModelGeometry.from_document(document, memory_blocks)
    print(f"document: {document}")
    print(f"model geometry: N={geometry.N} B={geometry.B} "
          f"M={geometry.M} k={geometry.k}\n")

    tree = document.to_element()
    print("outcome counting (Lemmas 4.1-4.2):")
    print(f"  log2 legal sorted orders (XML):  "
          f"{log2_sorting_outcomes(tree):.0f}")
    print(f"  log2 orders of a flat file:      "
          f"{log2_flat_outcomes(geometry.N):.0f}")

    lower = sorting_lower_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k
    )
    upper = nexsort_upper_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k, 2 * geometry.B
    )
    print("\nbounds (constants 1):")
    print(f"  Theorem 4.4 lower bound: {lower:8.0f} I/Os")
    print(f"  Theorem 4.5 upper bound: {upper:8.0f} I/Os")
    print(f"  constant-factor condition (k or M >= B^a): "
          f"{bounds_within_constant_factor(geometry.N, geometry.B, geometry.M, geometry.k)}")

    _sorted_doc, report = nexsort(document, spec, memory_blocks=memory_blocks)
    print("\nNEXSORT measured:")
    print(f"  total I/Os:     {report.total_ios} "
          f"({report.total_ios / upper:.1f}x the Thm 4.5 bound)")
    print(f"  subtree sorts:  {report.x} "
          f"({report.internal_sorts} internal, "
          f"{report.external_sorts} external)")
    print(f"  simulated time: {report.simulated_seconds:.2f} s")

    device2 = BlockDevice(block_size=512)
    store2 = RunStore(device2)
    document2 = Document.from_events(
        store2, level_fanout_events([13, 13, 13], seed=1, pad_bytes=24)
    )
    _out, merge_report = external_merge_sort(
        document2, spec, memory_blocks=memory_blocks
    )
    model_passes = merge_sort_passes(geometry.N, geometry.B, geometry.M)
    print("\nexternal merge sort measured:")
    print(f"  total I/Os:     {merge_report.total_ios}")
    print(f"  passes:         {merge_report.total_passes} "
          f"(pass model predicts {model_passes})")
    print(f"  simulated time: {merge_report.simulated_seconds:.2f} s")

    faster = report.simulated_seconds < merge_report.simulated_seconds
    print(f"\nNEXSORT faster on this hierarchical input: {faster}")


if __name__ == "__main__":
    main()
