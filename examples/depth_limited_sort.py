"""Depth-limited sorting and complex ordering criteria (paper §3.2).

Two of NEXSORT's extensions in one example:

* order employees by a *subtree expression* - the paper's own example,
  ``personalInfo/name/lastName`` - evaluated in the single scanning pass;
* stop recursive sorting at a chosen depth, leaving the records inside
  each employee in their original order.

Run with:  python examples/depth_limited_sort.py
"""

from repro import (
    BlockDevice,
    ByAttribute,
    ByChildPath,
    Document,
    RunStore,
    SortSpec,
    nexsort,
)

XML = """
<company>
  <department name="research">
    <employee badge="9">
      <personalInfo><name><lastName>Yang</lastName></name></personalInfo>
      <review year="2003"/>
      <review year="2001"/>
    </employee>
    <employee badge="4">
      <personalInfo><name><lastName>Silberstein</lastName></name></personalInfo>
      <review year="2002"/>
    </employee>
  </department>
  <department name="payroll">
    <employee badge="7">
      <personalInfo><name><lastName>Vitter</lastName></name></personalInfo>
    </employee>
  </department>
</company>
"""


def main() -> None:
    device = BlockDevice(block_size=4096)
    store = RunStore(device)
    document = Document.from_string(store, XML)

    # Departments order by name; employees by the text of
    # personalInfo/name/lastName, a single-pass subtree expression.
    spec = SortSpec(
        default=ByAttribute("name", missing_uses_tag=True),
        rules={"employee": ByChildPath("personalInfo/name/lastName")},
    )

    full, report = nexsort(document, spec, memory_blocks=8)
    print("head-to-toe sort (reviews inside employees get sorted too):")
    print(full.to_string(indent="  "))
    print(f"(total I/Os: {report.total_ios})\n")

    # Depth limit 2: department child lists (the employees) are ordered,
    # but everything inside an employee keeps its document order - the
    # reviews stay 2003-before-2001.
    limited, report = nexsort(
        document, spec, memory_blocks=8, depth_limit=2
    )
    print("depth-limited sort (d=2; employee subtrees left untouched):")
    print(limited.to_string(indent="  "))
    print(f"(total I/Os: {report.total_ios})")
    print("\nNote the Yang employee's reviews: sorted to 2001, 2003 in the"
          " first output, still 2003, 2001 in the depth-limited one.")


if __name__ == "__main__":
    main()
