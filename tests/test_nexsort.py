"""Tests for the NEXSORT core: correctness, extensions, and the paper's
Section 4.2 invariants checked against instrumented executions."""

import pytest

from repro.baselines import is_fully_sorted, sort_element
from repro.core import NexSorter, NexsortOptions, nexsort
from repro.errors import SortSpecError
from repro.io import BlockDevice, RunStore
from repro.keys import ByChildPath, ByText, SortSpec
from repro.xml import CompactionConfig, Document, Element

from .conftest import chain_tree, flat_tree, random_tree

COMPACTIONS = [None, CompactionConfig()]


def run_nexsort(tree, spec, memory_blocks=8, compaction=None, **options):
    device = BlockDevice(block_size=256)
    store = RunStore(device)
    doc = Document.from_element(store, tree, compaction=compaction)
    return nexsort(doc, spec, memory_blocks=memory_blocks, **options)


class TestCorrectness:
    @pytest.mark.parametrize("compaction", COMPACTIONS)
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_oracle(self, spec, seed, compaction):
        tree = random_tree(seed, depth=5, max_fanout=5, text_leaves=True)
        result, _report = run_nexsort(tree, spec, compaction=compaction)
        assert result.to_element() == sort_element(tree, spec)

    @pytest.mark.parametrize("memory", [6, 8, 16, 48])
    def test_any_memory_size(self, spec, memory):
        tree = random_tree(7, depth=5, max_fanout=6, pad=10)
        result, _report = run_nexsort(tree, spec, memory_blocks=memory)
        assert result.to_element() == sort_element(tree, spec)

    @pytest.mark.parametrize("threshold", [64, 256, 512, 4096])
    def test_any_threshold(self, spec, threshold):
        tree = random_tree(8, depth=5, max_fanout=5, pad=10)
        result, _report = run_nexsort(
            tree, spec, threshold_bytes=threshold
        )
        assert result.to_element() == sort_element(tree, spec)

    def test_single_element_document(self, spec):
        tree = Element("only", {"name": "x"})
        result, report = run_nexsort(tree, spec)
        assert result.to_element() == tree
        assert report.x == 1  # the root sort always happens

    def test_flat_document(self, spec):
        tree = flat_tree(200)
        result, _report = run_nexsort(tree, spec)
        assert result.to_element() == sort_element(tree, spec)

    def test_chain_document(self, spec):
        tree = chain_tree(60)
        result, _report = run_nexsort(tree, spec)
        assert result.to_element() == sort_element(tree, spec)

    def test_content_preserved(self, spec):
        tree = random_tree(21, depth=5, max_fanout=5, text_leaves=True)
        result, _report = run_nexsort(tree, spec)
        assert (
            result.to_element().unordered_canonical()
            == tree.unordered_canonical()
        )

    def test_duplicate_keys_are_stable(self, spec):
        tree = Element.parse(
            '<r name="r"><a name="k" id="1"/><a name="k" id="2"/>'
            '<a name="k" id="3"/></r>'
        )
        result, _report = run_nexsort(tree, spec)
        ids = [c.attrs["id"] for c in result.to_element().children]
        assert ids == ["1", "2", "3"]

    def test_idempotent(self, spec):
        tree = random_tree(4, depth=4, max_fanout=4)
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        once, _ = nexsort(doc, spec, memory_blocks=8)
        twice, _ = nexsort(once, spec, memory_blocks=8)
        assert once.to_element() == twice.to_element()


class TestComplexCriteria:
    def test_by_text(self):
        spec = SortSpec(default=ByText())
        tree = random_tree(5, depth=4, max_fanout=4, text_leaves=True)
        result, _report = run_nexsort(tree, spec)
        assert result.to_element() == sort_element(tree, spec)

    def test_by_child_path(self):
        spec = SortSpec(rules={"employee": ByChildPath("info/last")})
        children = []
        for index, last in enumerate(["Smith", "Adams", "Zeta", "Baker"]):
            info = Element("info", {}, "", [Element("last", {}, last)])
            children.append(
                Element("employee", {"n": str(index)}, "", [info])
            )
        tree = Element("company", {}, "", children)
        result, _report = run_nexsort(tree, spec)
        lasts = [
            c.find_path("info/last").text
            for c in result.to_element().children
        ]
        assert lasts == ["Adams", "Baker", "Smith", "Zeta"]

    def test_subtree_keys_with_small_threshold_forces_collapses(self):
        """Subtree-evaluated keys must survive collapse to run pointers."""
        spec = SortSpec(default=ByText())
        tree = random_tree(6, depth=5, max_fanout=4, text_leaves=True)
        result, report = run_nexsort(tree, spec, threshold_bytes=64)
        assert report.x > 1
        assert result.to_element() == sort_element(tree, spec)

    def test_compact_with_subtree_keys_rejected(self):
        spec = SortSpec(default=ByText())
        tree = random_tree(1)
        with pytest.raises(SortSpecError, match="end-tag elimination"):
            run_nexsort(tree, spec, compaction=CompactionConfig())


class TestDepthLimited:
    @pytest.mark.parametrize("depth_limit", [1, 2, 3])
    def test_matches_depth_limited_oracle(self, spec, depth_limit):
        tree = random_tree(11, depth=5, max_fanout=4)
        result, _report = run_nexsort(tree, spec, depth_limit=depth_limit)
        assert result.to_element() == sort_element(
            tree, spec, depth_limit=depth_limit
        )

    def test_depth_limited_with_small_threshold(self, spec):
        tree = random_tree(12, depth=6, max_fanout=4, pad=12)
        result, report = run_nexsort(
            tree, spec, depth_limit=2, threshold_bytes=128
        )
        assert result.to_element() == sort_element(
            tree, spec, depth_limit=2
        )
        # Deep subtrees are never broken up below the limit+1 level.
        assert all(
            info.level <= 3 for info in report.subtree_sorts
        )

    def test_depth_limit_sorts_less(self, spec):
        tree = random_tree(13, depth=5, max_fanout=5)
        limited, _ = run_nexsort(tree, spec, depth_limit=1)
        element = limited.to_element()
        assert element.is_sorted_by(spec.key_of_element, depth_limit=1)
        # Head-to-toe sortedness generally fails for a random tree.
        full = sort_element(tree, spec)
        assert element != full or is_fully_sorted(element, spec)


class TestFlatOptimization:
    @pytest.mark.parametrize("compaction", COMPACTIONS)
    def test_correct_on_flat_documents(self, spec, compaction):
        tree = flat_tree(400, pad=16)
        result, report = run_nexsort(
            tree, spec, flat_optimization=True, compaction=compaction
        )
        assert result.to_element() == sort_element(tree, spec)
        assert report.flat_partial_runs > 1
        assert report.flat_final_merges >= 1

    def test_correct_on_hierarchical_documents(self, spec):
        tree = random_tree(17, depth=5, max_fanout=6, pad=12)
        result, _report = run_nexsort(tree, spec, flat_optimization=True)
        assert result.to_element() == sort_element(tree, spec)

    def test_eliminates_data_stack_paging_on_flat_input(self, spec):
        tree = flat_tree(400, pad=16)
        _plain, plain_report = run_nexsort(tree, spec)
        _opt, opt_report = run_nexsort(tree, spec, flat_optimization=True)
        assert plain_report.data_stack_page_outs > 0
        assert opt_report.data_stack_page_outs == 0

    def test_no_partial_runs_for_small_documents(self, spec):
        tree = random_tree(3, depth=3, max_fanout=3)
        _result, report = run_nexsort(tree, spec, flat_optimization=True)
        assert report.flat_partial_runs == 0

    def test_flat_opt_with_text_content(self, spec):
        tree = flat_tree(300, pad=16)
        tree.text = "root level text"
        result, _report = run_nexsort(tree, spec, flat_optimization=True)
        assert result.to_element().text == "root level text"
        assert result.to_element() == sort_element(tree, spec)


class TestPaperInvariants:
    """The quantities of Section 4.2, checked on real executions."""

    def sorted_report(self, spec, seed=23, **kwargs):
        tree = random_tree(seed, depth=6, max_fanout=6, pad=12)
        _result, report = run_nexsort(tree, spec, **kwargs)
        return report

    def test_lemma_4_6_sum_of_subtree_sizes(self, spec):
        """sum(s_i) == N - 1 + x."""
        for seed in range(4):
            report = self.sorted_report(spec, seed=seed)
            assert report.sum_si == report.element_count - 1 + report.x

    def test_lemma_4_7_number_of_sorts(self, spec):
        """x <= (N-1)/(t-1)."""
        report = self.sorted_report(spec, threshold_bytes=256)
        # Our threshold is in bytes; convert to an element equivalent via
        # the document's average element size to apply the lemma's bound.
        average = max(
            1,
            sum(i.payload_bytes for i in report.subtree_sorts)
            // max(1, report.sum_si),
        )
        t_elements = max(2, report.threshold_bytes // average)
        assert report.x <= (report.element_count - 1) / (t_elements - 1) + 1

    def test_lemma_4_8_run_blocks_linear(self, spec):
        """Total sorted-run blocks = O(N/B): within a small constant."""
        report = self.sorted_report(spec)
        assert report.run_blocks_written <= 4 * report.input_blocks + 4

    def test_subtree_size_upper_bound(self, spec):
        """Any sorted subtree is smaller than k*t (+ slack for the root)."""
        report = self.sorted_report(spec)
        bound = report.max_fanout * report.threshold_bytes
        non_root = report.subtree_sorts[:-1]
        assert all(
            info.payload_bytes <= bound + report.threshold_bytes
            for info in non_root
        )

    def test_theorem_4_5_total_ios_within_constant_of_bound(self, spec):
        from repro.analysis import ModelGeometry, nexsort_upper_bound_ios

        tree = random_tree(29, depth=6, max_fanout=6, pad=12)
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        _result, report = nexsort(doc, spec, memory_blocks=8)
        geometry = ModelGeometry.from_document(doc, memory_blocks=8)
        t_elements = max(
            1, report.threshold_bytes // max(1, 256 // geometry.B)
        )
        bound = nexsort_upper_bound_ios(
            geometry.N, geometry.B, geometry.M, geometry.k,
            max(1, 2 * geometry.B),
        )
        assert report.total_ios <= 16 * bound + 64

    def test_report_breakdown_covers_all_phases(self, spec):
        report = self.sorted_report(spec)
        breakdown = report.io_breakdown()
        assert breakdown.get("input_scan", 0) == report.input_blocks
        assert breakdown.get("run_write", 0) > 0
        assert breakdown.get("output", 0) > 0
        assert breakdown.get("run_read", 0) > 0
        assert report.sorting_stats.total_ios > 0
        assert report.output_stats.total_ios > 0
        assert (
            report.stats.total_ios
            == report.sorting_stats.total_ios
            + report.output_stats.total_ios
        )

    def test_internal_and_external_sorts_both_occur(self, spec):
        tree = random_tree(31, depth=5, max_fanout=8, pad=20)
        _result, report = run_nexsort(
            tree, spec, memory_blocks=6, threshold_bytes=512
        )
        assert report.internal_sorts + report.external_sorts == report.x

    def test_output_element_count_matches_input(self, spec):
        tree = random_tree(33, depth=5, max_fanout=5)
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        result, _report = nexsort(doc, spec, memory_blocks=8)
        assert result.to_element().element_count() == doc.element_count


class TestValidation:
    def test_minimum_memory_enforced(self, spec):
        with pytest.raises(SortSpecError, match="at least"):
            NexSorter(spec, 5)

    def test_options_dataclass_defaults(self):
        options = NexsortOptions()
        assert options.threshold_bytes is None
        assert options.depth_limit is None
        assert not options.flat_optimization


class TestStackPaging:
    def test_deep_chain_pages_path_stack(self, spec):
        """A tall tree forces the 2-block path stack to page (Lemma 4.11
        machinery), without corrupting the sort."""
        tree = chain_tree(400)
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        result, report = nexsort(
            doc, spec, memory_blocks=6, threshold_bytes=10**9
        )
        assert report.path_stack_page_outs > 0
        assert report.path_stack_page_ins > 0
        assert result.to_element() == sort_element(tree, spec)

    def test_data_stack_pages_when_memory_tiny(self, spec):
        tree = flat_tree(300, pad=16)
        _result, report = run_nexsort(tree, spec, memory_blocks=6)
        assert report.data_stack_page_outs > 0
        assert report.data_stack_page_ins > 0
