"""Direct unit tests for the subtree-sorter internals."""

import random

import pytest

from repro.core.subtree import (
    SubtreeSorter,
    annotate_starts_from_ends,
    build_subtree,
    count_units,
    mask_keys_below,
    serialize_node_tree,
    sort_node_tree,
)
from repro.errors import CodecError
from repro.io import BlockDevice, RunStore
from repro.merge.engine import MergeOptions
from repro.xml import TokenCodec
from repro.xml.compact import NameDictionary
from repro.xml.tokens import (
    EndTag,
    MISSING_KEY,
    RunPointer,
    StartTag,
    Text,
    number_key,
    string_key,
)


def plain_tokens():
    """<r key=5><a key=2>t</a><ptr key=9/><b key=1/></r> annotated."""
    return [
        StartTag("r", key=number_key(5), pos=0),
        StartTag("a", key=number_key(2), pos=1),
        Text("t"),
        EndTag("a", pos=1),
        RunPointer(
            run_id=7, key=number_key(9), pos=2, element_count=4,
            payload_bytes=100,
        ),
        StartTag("b", key=number_key(1), pos=3),
        EndTag("b", pos=3),
        EndTag("r", pos=0),
    ]


class TestBuildSubtree:
    def test_plain_structure(self):
        root = build_subtree(plain_tokens(), compact=False)
        assert root.start.tag == "r"
        assert [c.key for c in root.children] == [
            number_key(2),
            number_key(9),
            number_key(1),
        ]
        assert root.children[1].is_pointer
        assert root.children[0].texts == ["t"]

    def test_compact_structure(self):
        tokens = [
            StartTag("r", key=number_key(5), pos=0, level=3),
            StartTag("a", key=number_key(2), pos=1, level=4),
            Text("t", level=4),
            RunPointer(
                run_id=7, key=number_key(9), pos=2, level=4,
                element_count=4, payload_bytes=100,
            ),
            StartTag("b", key=number_key(1), pos=3, level=4),
        ]
        root = build_subtree(tokens, compact=True)
        assert len(root.children) == 3
        assert root.children[1].is_pointer

    def test_end_tag_keys_override(self):
        tokens = [
            StartTag("r", pos=0),
            EndTag("r", key=string_key("late"), pos=0),
        ]
        root = build_subtree(tokens, compact=False)
        assert root.key == string_key("late")

    def test_unbalanced_rejected(self):
        with pytest.raises(CodecError):
            build_subtree([StartTag("r")], compact=False)

    def test_two_roots_rejected(self):
        tokens = [
            StartTag("a"), EndTag("a"), StartTag("b"), EndTag("b")
        ]
        with pytest.raises(CodecError):
            build_subtree(tokens, compact=False)

    def test_compact_without_levels_rejected(self):
        with pytest.raises(CodecError):
            build_subtree([StartTag("r")], compact=True)


class TestSortAndSerialize:
    def test_sorting_orders_children(self):
        device = BlockDevice(block_size=256)
        root = build_subtree(plain_tokens(), compact=False)
        sort_node_tree(root, None, device.stats)
        assert [c.key for c in root.children] == [
            number_key(1),
            number_key(2),
            number_key(9),
        ]
        assert device.stats.comparisons > 0

    def test_sort_levels_zero_keeps_order(self):
        device = BlockDevice(block_size=256)
        root = build_subtree(plain_tokens(), compact=False)
        sort_node_tree(root, 0, device.stats)
        assert [c.key for c in root.children] == [
            number_key(2),
            number_key(9),
            number_key(1),
        ]

    def test_serialize_strips_annotations(self):
        root = build_subtree(plain_tokens(), compact=False)
        tokens = list(serialize_node_tree(root, 1, compact=False))
        for token in tokens:
            if isinstance(token, (StartTag, EndTag)):
                assert token.key is None
                assert token.pos is None

    def test_serialize_compact_has_levels_no_ends(self):
        root = build_subtree(plain_tokens(), compact=False)
        tokens = list(serialize_node_tree(root, 5, compact=True))
        assert not any(isinstance(t, EndTag) for t in tokens)
        starts = [t for t in tokens if isinstance(t, StartTag)]
        assert starts[0].level == 5
        assert all(s.level == 6 for s in starts[1:])

    def test_serialize_preserves_pointer_counts(self):
        root = build_subtree(plain_tokens(), compact=False)
        tokens = list(serialize_node_tree(root, 1, compact=False))
        pointer = [t for t in tokens if isinstance(t, RunPointer)][0]
        assert pointer.element_count == 4
        assert pointer.run_id == 7


class TestHelpers:
    def test_count_units(self):
        units, real = count_units(plain_tokens())
        assert units == 4  # r, a, pointer, b
        assert real == 3 + 4  # three real starts + pointer's 4 elements

    def test_annotate_starts_from_ends(self):
        tokens = [
            StartTag("r", pos=0),
            StartTag("a", pos=1),
            EndTag("a", key=string_key("k1"), pos=1),
            EndTag("r", key=string_key("k0"), pos=0),
        ]
        fixed = annotate_starts_from_ends(tokens)
        assert fixed[0].key == string_key("k0")
        assert fixed[1].key == string_key("k1")

    def test_mask_keys_below(self):
        masked = mask_keys_below(plain_tokens(), sort_levels=1)
        # Root (level 1) keeps its key; children (level 2) are masked.
        assert masked[0].key == number_key(5)
        child_starts = [
            t
            for t in masked[1:]
            if isinstance(t, (StartTag, RunPointer))
        ]
        assert all(t.key == MISSING_KEY for t in child_starts)


class TestSorterDispatch:
    def make_sorter(self, capacity_bytes):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        return SubtreeSorter(
            store, TokenCodec(), compact=False,
            capacity_bytes=capacity_bytes, fan_in=2,
        )

    def test_small_subtree_sorts_internally(self):
        sorter = self.make_sorter(capacity_bytes=10**6)
        result = sorter.sort_tokens(plain_tokens(), 100, 1, None)
        assert result.internal
        assert result.units == 4
        assert result.root_key == number_key(5)

    def test_large_subtree_sorts_externally(self):
        sorter = self.make_sorter(capacity_bytes=16)
        result = sorter.sort_tokens(plain_tokens(), 1000, 1, None)
        assert not result.internal


def sibling_case(name):
    """Plain-mode annotated subtree tokens for one parity shape."""
    pos = iter(range(1, 10**6))

    def element(tag, key, children=(), text=None):
        p = next(pos)
        out = [StartTag(tag, key=key, pos=p)]
        if text is not None:
            out.append(Text(text))
        for child in children:
            out.extend(child)
        out.append(EndTag(tag, pos=p))
        return out

    if name == "duplicate-keys":
        # Equal keys must keep document order (position tie-break).
        children = [
            element("c", number_key(value), text=f"t{i}")
            for i, value in enumerate([2, 1, 2, 1, 2, 1, 2])
        ]
    elif name == "single-child-chain":
        # Every sibling list has one child: nothing to sort, all levels
        # visited (n == 1 groups are skipped by both kernels).
        inner = element("leaf", string_key("z"), text="deep")
        for depth in range(30):
            inner = element(f"n{depth}", number_key(depth), [inner])
        children = [inner]
    elif name == "wide-siblings":
        # A sibling list far wider than any merge fan-in, with key
        # collisions and nested grandchildren.
        rng = random.Random(42)
        children = []
        for i in range(60):
            grandchildren = [
                element("g", number_key(rng.randrange(5)))
                for _ in range(rng.randrange(3))
            ]
            key = (
                string_key(f"k{rng.randrange(8)}")
                if i % 2
                else number_key(rng.randrange(8))
            )
            children.append(element("w", key, grandchildren))
    elif name == "pointer-children":
        children = [
            element("a", number_key(4)),
            [
                RunPointer(
                    run_id=9,
                    key=number_key(1),
                    pos=next(pos),
                    element_count=5,
                    payload_bytes=64,
                )
            ],
            element("a", MISSING_KEY),
            element("a", number_key(1)),
        ]
    else:  # pragma: no cover - test bug
        raise AssertionError(name)
    root = [StartTag("r", key=number_key(0), pos=0)]
    for child in children:
        root.extend(child)
    root.append(EndTag("r", pos=0))
    return root


SIBLING_CASES = [
    "duplicate-keys",
    "single-child-chain",
    "wide-siblings",
    "pointer-children",
]


def compact_subtree_tokens(plain):
    """End-tag-eliminated form of a plain annotated subtree (levels on
    starts/texts/pointers, no end tags), as NEXSORT's data stack holds
    it in compacted mode."""
    out = []
    level = 0
    for token in plain:
        if isinstance(token, StartTag):
            level += 1
            out.append(
                StartTag(
                    token.tag,
                    token.attrs,
                    key=token.key,
                    pos=token.pos,
                    level=level,
                )
            )
        elif isinstance(token, EndTag):
            level -= 1
        elif isinstance(token, Text):
            out.append(Text(token.text, level=level))
        else:
            out.append(
                RunPointer(
                    run_id=token.run_id,
                    key=token.key,
                    pos=token.pos,
                    level=level + 1,
                    element_count=token.element_count,
                    payload_bytes=token.payload_bytes,
                )
            )
    return out


class TestColumnarSiblingGroups:
    """sort_node_tree / sort_records columnar parity (ISSUE 7)."""

    @pytest.mark.parametrize("name", SIBLING_CASES)
    @pytest.mark.parametrize("sort_levels", [None, 1, 0])
    def test_sort_node_tree_kernel_parity(self, name, sort_levels):
        tokens = sibling_case(name)
        scalar_dev = BlockDevice(block_size=256)
        columnar_dev = BlockDevice(block_size=256)
        scalar_root = build_subtree(tokens, compact=False)
        columnar_root = build_subtree(tokens, compact=False)
        sort_node_tree(scalar_root, sort_levels, scalar_dev.stats)
        sort_node_tree(
            columnar_root,
            sort_levels,
            columnar_dev.stats,
            kernel="columnar",
        )
        assert list(
            serialize_node_tree(columnar_root, 1, compact=False)
        ) == list(serialize_node_tree(scalar_root, 1, compact=False))
        assert (
            columnar_dev.stats.comparisons == scalar_dev.stats.comparisons
        )

    @pytest.mark.parametrize("name", SIBLING_CASES)
    @pytest.mark.parametrize("compact", [False, True])
    @pytest.mark.parametrize("names_coded", [False, True])
    def test_sort_records_matches_sort_tokens(
        self, name, compact, names_coded
    ):
        """The fused raw-record path equals decode -> sort_tokens, bit
        for bit: run contents, counters, and the RunPointer summary."""
        plain = sibling_case(name)
        tokens = compact_subtree_tokens(plain) if compact else plain
        names = NameDictionary() if names_coded else None
        codec = TokenCodec(names)
        records = [codec.encode(token) for token in tokens]

        def run(kernel):
            device = BlockDevice(block_size=256)
            store = RunStore(device)
            sorter = SubtreeSorter(
                store,
                codec,
                compact,
                capacity_bytes=10**6,
                fan_in=2,
                options=MergeOptions(kernel=kernel),
            )
            if kernel == "columnar":
                result = sorter.sort_records(records, 500, 1, None)
            else:
                result = sorter.sort_tokens(
                    [codec.decode(record) for record in records],
                    500,
                    1,
                    None,
                )
            contents = list(store.open_reader(result.run))
            return contents, result, device.stats.snapshot()

        columnar_contents, columnar_result, columnar_stats = run("columnar")
        scalar_contents, scalar_result, scalar_stats = run("scalar")
        assert columnar_contents == scalar_contents
        assert columnar_stats.counter_totals() == (
            scalar_stats.counter_totals()
        )
        for field in (
            "units",
            "real_elements",
            "payload_bytes",
            "root_key",
            "root_pos",
            "internal",
        ):
            assert getattr(columnar_result, field) == getattr(
                scalar_result, field
            ), field

    def test_sort_records_root_key_from_end_tag(self):
        """Plain-mode subtree-evaluated keys ride on the end tag; the
        fused root summary must fall back to it like sort_tokens."""
        codec = TokenCodec()
        tokens = [
            StartTag("r", pos=0),
            StartTag("a", key=number_key(2), pos=1),
            EndTag("a", pos=1),
            EndTag("r", key=string_key("late"), pos=0),
        ]
        records = [codec.encode(token) for token in tokens]
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        sorter = SubtreeSorter(
            store,
            codec,
            compact=False,
            capacity_bytes=10**6,
            fan_in=2,
            options=MergeOptions(kernel="columnar"),
        )
        result = sorter.sort_records(records, 100, 1, None)
        assert result.root_key == string_key("late")
        assert result.root_pos == 0

    def test_sort_records_counted_mode_falls_back(self):
        """Counted-comparison mode must keep the scalar counting sort."""
        codec = TokenCodec()
        records = [
            codec.encode(token)
            for token in sibling_case("duplicate-keys")
        ]

        def run(options):
            device = BlockDevice(block_size=256)
            store = RunStore(device)
            sorter = SubtreeSorter(
                store,
                codec,
                compact=False,
                capacity_bytes=10**6,
                fan_in=2,
                options=options,
            )
            result = sorter.sort_records(records, 500, 1, None)
            return list(store.open_reader(result.run)), device.stats

        counted = MergeOptions(
            kernel="columnar", merge_kernel="loser-tree"
        )
        analytic = MergeOptions(kernel="columnar")
        counted_contents, counted_stats = run(counted)
        analytic_contents, analytic_stats = run(analytic)
        assert counted_contents == analytic_contents
        # Counted mode records what the comparison sequence actually
        # did, which differs from the analytic n*ceil(log2 n) charge.
        assert counted_stats.comparisons != analytic_stats.comparisons


def test_internal_and_external_subtree_sorts_agree():
    """The two subtree-sort paths must produce identical runs."""
    codec = TokenCodec()

    def run_tokens(capacity):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        sorter = SubtreeSorter(
            store, codec, compact=False, capacity_bytes=capacity, fan_in=2
        )
        result = sorter.sort_tokens(plain_tokens(), 500, 1, None)
        return [
            codec.decode(record)
            for record in store.open_reader(result.run)
        ], result

    internal_tokens, internal_result = run_tokens(10**6)
    external_tokens, external_result = run_tokens(16)
    assert internal_result.internal
    assert not external_result.internal
    assert internal_tokens == external_tokens
