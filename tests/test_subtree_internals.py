"""Direct unit tests for the subtree-sorter internals."""

import pytest

from repro.core.subtree import (
    SubtreeSorter,
    annotate_starts_from_ends,
    build_subtree,
    count_units,
    mask_keys_below,
    serialize_node_tree,
    sort_node_tree,
)
from repro.errors import CodecError
from repro.io import BlockDevice, RunStore
from repro.xml import TokenCodec
from repro.xml.tokens import (
    EndTag,
    MISSING_KEY,
    RunPointer,
    StartTag,
    Text,
    number_key,
    string_key,
)


def plain_tokens():
    """<r key=5><a key=2>t</a><ptr key=9/><b key=1/></r> annotated."""
    return [
        StartTag("r", key=number_key(5), pos=0),
        StartTag("a", key=number_key(2), pos=1),
        Text("t"),
        EndTag("a", pos=1),
        RunPointer(
            run_id=7, key=number_key(9), pos=2, element_count=4,
            payload_bytes=100,
        ),
        StartTag("b", key=number_key(1), pos=3),
        EndTag("b", pos=3),
        EndTag("r", pos=0),
    ]


class TestBuildSubtree:
    def test_plain_structure(self):
        root = build_subtree(plain_tokens(), compact=False)
        assert root.start.tag == "r"
        assert [c.key for c in root.children] == [
            number_key(2),
            number_key(9),
            number_key(1),
        ]
        assert root.children[1].is_pointer
        assert root.children[0].texts == ["t"]

    def test_compact_structure(self):
        tokens = [
            StartTag("r", key=number_key(5), pos=0, level=3),
            StartTag("a", key=number_key(2), pos=1, level=4),
            Text("t", level=4),
            RunPointer(
                run_id=7, key=number_key(9), pos=2, level=4,
                element_count=4, payload_bytes=100,
            ),
            StartTag("b", key=number_key(1), pos=3, level=4),
        ]
        root = build_subtree(tokens, compact=True)
        assert len(root.children) == 3
        assert root.children[1].is_pointer

    def test_end_tag_keys_override(self):
        tokens = [
            StartTag("r", pos=0),
            EndTag("r", key=string_key("late"), pos=0),
        ]
        root = build_subtree(tokens, compact=False)
        assert root.key == string_key("late")

    def test_unbalanced_rejected(self):
        with pytest.raises(CodecError):
            build_subtree([StartTag("r")], compact=False)

    def test_two_roots_rejected(self):
        tokens = [
            StartTag("a"), EndTag("a"), StartTag("b"), EndTag("b")
        ]
        with pytest.raises(CodecError):
            build_subtree(tokens, compact=False)

    def test_compact_without_levels_rejected(self):
        with pytest.raises(CodecError):
            build_subtree([StartTag("r")], compact=True)


class TestSortAndSerialize:
    def test_sorting_orders_children(self):
        device = BlockDevice(block_size=256)
        root = build_subtree(plain_tokens(), compact=False)
        sort_node_tree(root, None, device.stats)
        assert [c.key for c in root.children] == [
            number_key(1),
            number_key(2),
            number_key(9),
        ]
        assert device.stats.comparisons > 0

    def test_sort_levels_zero_keeps_order(self):
        device = BlockDevice(block_size=256)
        root = build_subtree(plain_tokens(), compact=False)
        sort_node_tree(root, 0, device.stats)
        assert [c.key for c in root.children] == [
            number_key(2),
            number_key(9),
            number_key(1),
        ]

    def test_serialize_strips_annotations(self):
        root = build_subtree(plain_tokens(), compact=False)
        tokens = list(serialize_node_tree(root, 1, compact=False))
        for token in tokens:
            if isinstance(token, (StartTag, EndTag)):
                assert token.key is None
                assert token.pos is None

    def test_serialize_compact_has_levels_no_ends(self):
        root = build_subtree(plain_tokens(), compact=False)
        tokens = list(serialize_node_tree(root, 5, compact=True))
        assert not any(isinstance(t, EndTag) for t in tokens)
        starts = [t for t in tokens if isinstance(t, StartTag)]
        assert starts[0].level == 5
        assert all(s.level == 6 for s in starts[1:])

    def test_serialize_preserves_pointer_counts(self):
        root = build_subtree(plain_tokens(), compact=False)
        tokens = list(serialize_node_tree(root, 1, compact=False))
        pointer = [t for t in tokens if isinstance(t, RunPointer)][0]
        assert pointer.element_count == 4
        assert pointer.run_id == 7


class TestHelpers:
    def test_count_units(self):
        units, real = count_units(plain_tokens())
        assert units == 4  # r, a, pointer, b
        assert real == 3 + 4  # three real starts + pointer's 4 elements

    def test_annotate_starts_from_ends(self):
        tokens = [
            StartTag("r", pos=0),
            StartTag("a", pos=1),
            EndTag("a", key=string_key("k1"), pos=1),
            EndTag("r", key=string_key("k0"), pos=0),
        ]
        fixed = annotate_starts_from_ends(tokens)
        assert fixed[0].key == string_key("k0")
        assert fixed[1].key == string_key("k1")

    def test_mask_keys_below(self):
        masked = mask_keys_below(plain_tokens(), sort_levels=1)
        # Root (level 1) keeps its key; children (level 2) are masked.
        assert masked[0].key == number_key(5)
        child_starts = [
            t
            for t in masked[1:]
            if isinstance(t, (StartTag, RunPointer))
        ]
        assert all(t.key == MISSING_KEY for t in child_starts)


class TestSorterDispatch:
    def make_sorter(self, capacity_bytes):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        return SubtreeSorter(
            store, TokenCodec(), compact=False,
            capacity_bytes=capacity_bytes, fan_in=2,
        )

    def test_small_subtree_sorts_internally(self):
        sorter = self.make_sorter(capacity_bytes=10**6)
        result = sorter.sort_tokens(plain_tokens(), 100, 1, None)
        assert result.internal
        assert result.units == 4
        assert result.root_key == number_key(5)

    def test_large_subtree_sorts_externally(self):
        sorter = self.make_sorter(capacity_bytes=16)
        result = sorter.sort_tokens(plain_tokens(), 1000, 1, None)
        assert not result.internal


def test_internal_and_external_subtree_sorts_agree():
    """The two subtree-sort paths must produce identical runs."""
    codec = TokenCodec()

    def run_tokens(capacity):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        sorter = SubtreeSorter(
            store, codec, compact=False, capacity_bytes=capacity, fan_in=2
        )
        result = sorter.sort_tokens(plain_tokens(), 500, 1, None)
        return [
            codec.decode(record)
            for record in store.open_reader(result.run)
        ], result

    internal_tokens, internal_result = run_tokens(10**6)
    external_tokens, external_result = run_tokens(16)
    assert internal_result.internal
    assert not external_result.internal
    assert internal_tokens == external_tokens
