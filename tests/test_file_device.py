"""Tests for the file-backed block device."""

import os

import pytest

from repro.baselines import sort_element
from repro.core import nexsort
from repro.errors import DeviceError
from repro.io import FileBackedBlockDevice, RunStore
from repro.xml import Document

from .conftest import random_tree


@pytest.fixture
def file_device(tmp_path):
    device = FileBackedBlockDevice(
        str(tmp_path / "device.bin"), block_size=256
    )
    yield device
    device.close()


class TestFileBacking:
    def test_round_trip(self, file_device):
        block = file_device.allocate()
        file_device.write_block(block, b"hello")
        assert file_device.read_block(block).startswith(b"hello")

    def test_blocks_are_padded_to_block_size(self, file_device):
        block = file_device.allocate()
        file_device.write_block(block, b"short")
        data = file_device.read_block(block)
        assert len(data) == 256

    def test_read_never_written_fails(self, file_device):
        block = file_device.allocate()
        with pytest.raises(DeviceError):
            file_device.read_block(block)

    def test_free_then_read_fails(self, file_device):
        block = file_device.allocate()
        file_device.write_block(block, b"x")
        file_device.free_blocks([block])
        with pytest.raises(DeviceError):
            file_device.read_block(block)

    def test_accounting_identical_to_memory_device(self, file_device):
        start = file_device.allocate(3)
        for offset in range(3):
            file_device.write_block(start + offset, b"x", "stream")
        counters = file_device.stats.by_category["stream"]
        assert counters.writes == 3
        assert counters.seq_writes == 3

    def test_vectored_round_trip(self, file_device):
        start = file_device.allocate(4)
        datas = [bytes([i]) * 16 for i in range(4)]
        ids = [start + i for i in range(4)]
        file_device.write_blocks(ids, datas, "v")
        out = file_device.read_blocks(ids, "v")
        for data, block in zip(datas, out):
            assert block.startswith(data)
            assert len(block) == 256

    def test_vectored_accounting_matches_memory_device(self, file_device):
        from repro.io import BlockDevice

        memory_device = BlockDevice(block_size=256)
        for device in (file_device, memory_device):
            start = device.allocate(6)
            # Two contiguous extents with a gap between them.
            ids = [start, start + 1, start + 4, start + 5]
            device.write_blocks(ids, [b"d"] * 4, "v")
            device.read_blocks(ids, "v")
        file_counters = file_device.stats.by_category["v"]
        memory_counters = memory_device.stats.by_category["v"]
        assert file_counters.writes == memory_counters.writes == 4
        assert file_counters.seq_writes == memory_counters.seq_writes
        assert file_counters.reads == memory_counters.reads == 4
        assert file_counters.seq_reads == memory_counters.seq_reads

    def test_vectored_read_of_unwritten_block_fails(self, file_device):
        start = file_device.allocate(2)
        file_device.write_block(start, b"x")
        with pytest.raises(DeviceError):
            file_device.read_blocks([start, start + 1])

    def test_nexsort_with_pool_on_file_device(self, file_device, spec):
        store = RunStore(file_device)
        tree = random_tree(5, depth=4, max_fanout=5, pad=12)
        document = Document.from_element(store, tree)
        result, report = nexsort(
            document, spec, memory_blocks=12, cache_blocks=4
        )
        assert result.to_element() == sort_element(tree, spec)
        assert report.stats.cache_hits > 0

    def test_backing_file_removed_on_close(self, tmp_path):
        path = str(tmp_path / "scratch.bin")
        with FileBackedBlockDevice(path, block_size=256) as device:
            block = device.allocate()
            device.write_block(block, b"x")
            assert os.path.exists(path)
        assert not os.path.exists(path)

    def test_keep_file_option(self, tmp_path):
        path = str(tmp_path / "kept.bin")
        device = FileBackedBlockDevice(
            path, block_size=256, keep_file=True
        )
        block = device.allocate()
        device.write_block(block, b"x")
        device.close()
        assert os.path.exists(path)


class TestEndToEndOnFile:
    def test_nexsort_on_file_backed_device(self, file_device, spec):
        store = RunStore(file_device)
        tree = random_tree(5, depth=4, max_fanout=5, pad=12)
        document = Document.from_element(store, tree)
        result, report = nexsort(document, spec, memory_blocks=8)
        assert result.to_element() == sort_element(tree, spec)
        assert report.total_ios > 0

    def test_same_io_counts_as_memory_device(self, tmp_path, spec):
        from repro.io import BlockDevice

        tree = random_tree(6, depth=4, max_fanout=5, pad=12)

        memory_device = BlockDevice(block_size=256)
        memory_store = RunStore(memory_device)
        doc = Document.from_element(memory_store, tree)
        _result, memory_report = nexsort(doc, spec, memory_blocks=8)

        with FileBackedBlockDevice(
            str(tmp_path / "d.bin"), block_size=256
        ) as file_device:
            file_store = RunStore(file_device)
            doc = Document.from_element(file_store, tree)
            _result, file_report = nexsort(doc, spec, memory_blocks=8)

        assert file_report.total_ios == memory_report.total_ios
