"""Unit tests for the key-path representation (Table 1)."""

import pytest

from repro.baselines import (
    KeyPathRecord,
    decode_record,
    encode_record,
    key_path_table,
    records_from_annotated_events,
    records_from_document_scan,
    tokens_from_sorted_records,
)
from repro.errors import CodecError, SortSpecError
from repro.generators import figure1_d1, figure1_spec
from repro.keys import ByText, KeyEvaluator, SortSpec
from repro.xml import Document, Element, NameDictionary, parse_events
from repro.xml.tokens import (
    EndTag,
    RunPointer,
    StartTag,
    number_key,
    string_key,
)


def records_of(xml: str, spec):
    annotated = KeyEvaluator(spec).annotate(parse_events(xml))
    return list(records_from_annotated_events(annotated))


class TestRecordGeneration:
    def test_every_element_gets_one_record(self, spec):
        records = records_of(
            '<a name="r"><b name="x"/><b name="y"><c name="z"/></b></a>',
            spec,
        )
        assert len(records) == 4

    def test_paths_embed_ancestor_keys(self, spec):
        records = records_of(
            '<a name="r"><b name="x"><c name="z"/></b></a>', spec
        )
        deepest = max(records, key=lambda r: r.depth)
        atoms = [atom for atom, _pos in deepest.path]
        assert atoms == [
            string_key("r"),
            string_key("x"),
            string_key("z"),
        ]

    def test_positions_make_paths_unique(self, spec):
        records = records_of(
            '<a name="r"><b name="same"/><b name="same"/></a>', spec
        )
        paths = [record.path for record in records]
        assert len(set(paths)) == len(paths)

    def test_text_is_captured(self, spec):
        records = records_of('<a name="r"><b name="x">val</b></a>', spec)
        leaf = [r for r in records if r.tag == "b"][0]
        assert leaf.text == "val"

    def test_subtree_spec_rejected(self):
        spec = SortSpec(default=ByText())
        annotated = KeyEvaluator(spec).annotate(parse_events("<a>x</a>"))
        with pytest.raises(SortSpecError):
            list(records_from_annotated_events(annotated))

    def test_pointer_events_become_pointer_records(self, spec):
        events = [
            StartTag("a", key=string_key("r"), pos=0),
            RunPointer(
                run_id=5,
                key=string_key("k"),
                pos=1,
                element_count=10,
                payload_bytes=99,
            ),
            EndTag("a", pos=0),
        ]
        records = list(records_from_annotated_events(iter(events)))
        pointers = [r for r in records if r.is_pointer]
        assert len(pointers) == 1
        assert pointers[0].run_id == 5
        assert pointers[0].element_count == 10

    def test_sorted_records_give_parent_before_child(self, spec):
        records = records_of(
            '<a name="r"><b name="x"><c name="y"/></b></a>', spec
        )
        ordered = sorted(records, key=KeyPathRecord.sort_key)
        depths = [record.depth for record in ordered]
        assert depths == [1, 2, 3]


class TestEncoding:
    @pytest.mark.parametrize("names", [None, NameDictionary()])
    def test_element_record_round_trip(self, names):
        record = KeyPathRecord(
            path=((string_key("r"), 0), (number_key(42), 3)),
            tag="employee",
            attrs=(("ID", "42"), ("pad", "x")),
            text="body & text",
        )
        encoded = encode_record(record, names)
        assert decode_record(encoded, names) == record

    @pytest.mark.parametrize("names", [None, NameDictionary()])
    def test_pointer_record_round_trip(self, names):
        record = KeyPathRecord(
            path=((string_key("r"), 0),),
            run_id=7,
            element_count=123,
            payload_bytes=4567,
        )
        encoded = encode_record(record, names)
        assert decode_record(encoded, names) == record


class TestDecodingToTokens:
    def test_inverse_of_generation(self, spec, store):
        xml = (
            '<a name="r"><b name="x">t1</b>'
            '<b name="y"><c name="z">t2</c></b></a>'
        )
        records = records_of(xml, spec)
        records.sort(key=KeyPathRecord.sort_key)
        tokens = list(tokens_from_sorted_records(iter(records)))
        rebuilt = Element.from_events(
            StartTag(t.tag, t.attrs)
            if isinstance(t, StartTag)
            else t
            for t in tokens
        )
        # The original was already sorted under the spec, so decode must
        # reproduce it exactly.
        assert rebuilt == Element.parse(xml)

    def test_base_level_offsets_levels(self, spec):
        records = records_of('<a name="r"><b name="x"/></a>', spec)
        records.sort(key=KeyPathRecord.sort_key)
        tokens = list(
            tokens_from_sorted_records(
                iter(records), base_level=5, emit_end_tags=False
            )
        )
        starts = [t for t in tokens if isinstance(t, StartTag)]
        assert [s.level for s in starts] == [5, 6]
        assert not any(isinstance(t, EndTag) for t in tokens)

    def test_out_of_order_records_rejected(self, spec):
        records = records_of(
            '<a name="r"><b name="x"><c name="y"/></b></a>', spec
        )
        records.sort(key=KeyPathRecord.sort_key)
        del records[1]  # remove the level-2 parent: depth jumps 1 -> 3
        with pytest.raises(CodecError):
            list(tokens_from_sorted_records(iter(records)))


class TestTable1:
    def test_reproduces_paper_rows(self, store):
        doc = Document.from_element(store, figure1_d1())
        rows = key_path_table(doc, figure1_spec())
        assert rows == [
            ("/", "<company>"),
            ("/NE", '<region name="NE">'),
            ("/AC", '<region name="AC">'),
            ("/AC/Durham", '<branch name="Durham">'),
            ("/AC/Durham/454", '<employee ID="454">'),
            ("/AC/Durham/323", '<employee ID="323">'),
            ("/AC/Durham/323/name", "<name>Smith"),
            ("/AC/Durham/323/phone", "<phone>5552345"),
            ("/AC/Atlanta", '<branch name="Atlanta">'),
        ]

    def test_scan_generator_matches_table_contents(self, store):
        doc = Document.from_element(store, figure1_d1())
        records = list(records_from_document_scan(doc, figure1_spec()))
        assert len(records) == doc.element_count
