"""Tests for the theory module: Lemmas 4.1-4.2, Theorems 4.4-4.5."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ModelGeometry,
    adversarial_fanouts,
    adversarial_tree,
    bounds_within_constant_factor,
    fanouts_of,
    flat_sorting_lower_bound_ios,
    log2_factorial,
    log2_flat_outcomes,
    log2_max_outcomes,
    log2_sorting_outcomes,
    merge_sort_ios,
    merge_sort_passes,
    nexsort_over_lower_bound_ratio,
    nexsort_upper_bound_ios,
    predicted_seconds_from_ios,
    sorting_lower_bound_ios,
)
from repro.errors import ReproError
from repro.xml import Element

from .conftest import random_tree


class TestOutcomeCounting:
    def test_log2_factorial_matches_math(self):
        for n in (0, 1, 2, 5, 10, 100):
            assert log2_factorial(n) == pytest.approx(
                math.log2(math.factorial(n)), rel=1e-9
            )

    def test_flat_file_allows_more_outcomes(self):
        """The heart of the paper: hierarchy shrinks the outcome space."""
        for seed in range(5):
            tree = random_tree(seed, depth=4, max_fanout=6)
            structured = log2_sorting_outcomes(tree)
            flat = log2_flat_outcomes(tree.element_count())
            assert structured < flat

    def test_adversarial_fanouts_edge_count(self):
        fanouts = adversarial_fanouts(100, 7)
        assert sum(fanouts) == 99
        assert all(0 < f <= 7 for f in fanouts)
        assert sum(1 for f in fanouts if f != 7) <= 1

    def test_lemma_4_2_closed_form(self):
        n, k = 100, 7
        expected = (99 // 7) * log2_factorial(7) + log2_factorial(99 % 7)
        assert log2_max_outcomes(n, k) == pytest.approx(expected)

    def test_adversarial_tree_realizes_the_maximum(self):
        tree = adversarial_tree(100, 7)
        assert tree.element_count() == 100
        assert tree.max_fanout() <= 7
        assert log2_sorting_outcomes(tree) == pytest.approx(
            log2_max_outcomes(100, 7)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=400),
        k=st.integers(min_value=1, max_value=30),
    )
    def test_lemma_4_1_no_tree_beats_the_adversary(self, n, k):
        """Random trees with fan-out <= k never exceed the Lemma 4.2 max."""
        rng = random.Random(n * 1000 + k)
        # Build a random tree with exactly n elements and fan-out <= k.
        root = Element("r")
        nodes = [root]
        for index in range(n - 1):
            parent = rng.choice(nodes)
            while len(parent.children) >= k:
                parent = rng.choice(nodes)
            child = Element("c", {"i": str(index)})
            parent.children.append(child)
            nodes.append(child)
        assert log2_sorting_outcomes(root) <= log2_max_outcomes(n, k) + 1e-6

    def test_exchange_argument_gain_positive(self):
        from repro.analysis import rebalance_increases_outcomes

        assert rebalance_increases_outcomes([3, 4], 10) > 0
        assert rebalance_increases_outcomes([10, 10], 10) == 0.0
        assert rebalance_increases_outcomes([5], 10) == 0.0

    def test_fanouts_of(self):
        tree = Element.parse("<a><b><c/><d/></b><e/></a>")
        assert sorted(fanouts_of(tree)) == [0, 0, 0, 2, 2]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            adversarial_fanouts(0, 5)
        with pytest.raises(ReproError):
            adversarial_fanouts(10, 0)


class TestBounds:
    def test_xml_bound_below_flat_bound(self):
        """Theorem 4.4 vs Aggarwal-Vitter: k/B < N/B makes XML easier."""
        N, B, M, k = 10**6, 30, 30 * 8, 50
        assert sorting_lower_bound_ios(
            N, B, M, k
        ) < flat_sorting_lower_bound_ios(N, B, M)

    def test_scan_floor(self):
        """With tiny fan-out the bound collapses to the scan cost N/B."""
        N, B, M = 10**5, 30, 30 * 8
        assert sorting_lower_bound_ios(N, B, M, k=2) == pytest.approx(
            N / B
        )

    def test_lower_bound_monotone_in_fanout(self):
        N, B, M = 10**6, 20, 20 * 8
        values = [
            sorting_lower_bound_ios(N, B, M, k) for k in (2, 50, 500, 5000)
        ]
        assert values == sorted(values)

    def test_upper_bound_dominates_lower_bound(self):
        for k in (2, 10, 100, 1000):
            N, B, M = 10**6, 25, 25 * 16
            assert nexsort_upper_bound_ios(
                N, B, M, k
            ) >= sorting_lower_bound_ios(N, B, M, k) - 1e-9

    def test_constant_factor_condition(self):
        # k >= B^alpha
        assert bounds_within_constant_factor(10**6, 10, 10 * 4, k=1000)
        # M >= B^alpha
        assert bounds_within_constant_factor(10**6, 10, 10**4, k=5)
        assert not bounds_within_constant_factor(
            10**6, 100, 100 * 2, k=5
        )

    def test_ratio_bounded_when_condition_holds(self):
        """Section 4.2: the gap is a constant when k >= B^alpha."""
        B = 10
        for k in (1000, 10**4, 10**5):
            ratio = nexsort_over_lower_bound_ratio(
                10**7, B, B * 8, k
            )
            assert ratio < 6.0

    def test_merge_sort_passes_match_manual_count(self):
        # N/M = 32 initial runs, fan-in 7: 32 -> 5 -> 1 = 2 merge passes.
        B = 10
        M = 8 * B
        N = 32 * M
        assert merge_sort_passes(N, B, M) == 3

    def test_merge_sort_passes_monotone_in_memory(self):
        N, B = 10**6, 25
        passes = [merge_sort_passes(N, B, m * B) for m in (3, 6, 12, 48)]
        assert passes == sorted(passes, reverse=True)

    def test_merge_sort_ios_formula(self):
        N, B, M = 10**5, 20, 20 * 10
        assert merge_sort_ios(N, B, M) == pytest.approx(
            2 * (N / B) * merge_sort_passes(N, B, M)
        )

    def test_nexsort_bound_uses_kt_cap(self):
        """min(kt, N): tiny documents cap the log argument at N."""
        B, M = 20, 20 * 8
        small = nexsort_upper_bound_ios(N=100, B=B, M=M, k=10**6)
        n = 100 / B
        assert small <= n + n * math.log(100 / B) / math.log(8) + 1e-9

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ReproError):
            sorting_lower_bound_ios(0, 10, 100, 5)
        with pytest.raises(ReproError):
            sorting_lower_bound_ios(100, 10, 10, 5)  # M < 2B

    @settings(max_examples=200, deadline=None)
    @given(
        blocks=st.integers(min_value=1, max_value=10**6),
        B=st.integers(min_value=1, max_value=512),
        m=st.integers(min_value=3, max_value=512),
    )
    def test_passes_are_one_more_than_merge_depth(self, blocks, B, m):
        """The dedup contract: one formation pass plus the merge tree.

        ``merge_sort_passes`` and ``arge_thorup_merge_depth`` used to
        run separate iterated ceil-division loops that could drift;
        both now reduce to ``iterated_merge_depth``, and this property
        pins the relation across the whole geometry grid.
        """
        from repro.analysis import arge_thorup_merge_depth

        N, M = blocks * B, m * B
        assert merge_sort_passes(N, B, M) == (
            1 + arge_thorup_merge_depth(N, B, M)
        )

    def test_iterated_merge_depth_hand_counts(self):
        from repro.analysis import iterated_merge_depth

        assert iterated_merge_depth(1, 7) == 0
        assert iterated_merge_depth(7, 7) == 1
        assert iterated_merge_depth(8, 7) == 2
        assert iterated_merge_depth(50, 7) == 3  # 50 -> 8 -> 2 -> 1

    def test_iterated_merge_depth_rejects_bad_parameters(self):
        from repro.analysis import iterated_merge_depth

        with pytest.raises(ReproError):
            iterated_merge_depth(10, 1)
        with pytest.raises(ReproError):
            iterated_merge_depth(0, 4)


class TestCostModel:
    def test_predicted_seconds_scale_with_ios(self):
        assert predicted_seconds_from_ios(2000) > predicted_seconds_from_ios(
            1000
        )

    def test_geometry_from_document(self, store):
        from repro.xml import Document

        tree = random_tree(3, depth=4, max_fanout=5, pad=16)
        doc = Document.from_element(store, tree)
        geometry = ModelGeometry.from_document(doc, memory_blocks=8)
        assert geometry.N == doc.element_count
        assert geometry.k == doc.max_fanout
        assert geometry.M == 8 * geometry.B


class TestPermutationBounds:
    """The conclusion's future-work program: permutation-aware bounds."""

    def test_permuting_bound_below_flat_sorting_bound(self):
        from repro.analysis import permutation_lower_bound_ios

        N, B, M = 10**6, 25, 25 * 8
        assert permutation_lower_bound_ios(
            N, B, M
        ) <= flat_sorting_lower_bound_ios(N, B, M) + 1e-9

    def test_permuting_bound_caps_at_elementwise_moves(self):
        from repro.analysis import permutation_lower_bound_ios

        # Tiny blocks: moving elements one at a time (N I/Os) can beat
        # block-granular sorting.
        N, B, M = 10**4, 2, 2 * 4
        assert permutation_lower_bound_ios(N, B, M) <= N

    def test_xml_conjecture_between_scan_and_theorem(self):
        from repro.analysis import xml_permutation_conjecture_ios

        N, B, M, k = 10**6, 30, 30 * 8, 300
        conjecture = xml_permutation_conjecture_ios(N, B, M, k)
        assert conjecture >= N / B  # never below the scan
        assert conjecture <= max(
            N / B, sorting_lower_bound_ios(N, B, M, k)
        ) + 1e-9

    def test_xml_conjecture_tightens_when_k_small(self):
        """For k < B (the paper's conjectured regime) the conjecture
        collapses to the scan bound, matching Theorem 4.4."""
        from repro.analysis import xml_permutation_conjecture_ios

        N, B, M, k = 10**6, 100, 100 * 8, 10
        assert xml_permutation_conjecture_ios(
            N, B, M, k
        ) == pytest.approx(N / B)
