"""Pooled vs unpooled accounting parity across the MergeOptions grid.

A buffer pool must be *transparent*: giving a sort ``C`` extra memory
blocks and spending exactly those ``C`` on a pool leaves the sort's
effective memory - and therefore its run tree, its comparison counts,
and its output - unchanged.  The pool may only elide device I/O, never
change what the sort computes:

* the output document is bit-identical;
* every CPU-side counter (tokens, comparisons, merge comparisons) is
  identical - caching is invisible to the algorithm;
* device writes never increase (write-back elides rewrites and
  freed-dirty writes);
* every elided read is accounted as a cache hit:
  ``reads_pooled + cache_hits >= reads_unpooled`` (readahead may
  overshoot, so reads alone may exceed the unpooled count).

The exhaustive test pins the full run-formation x merge-kernel x
embedded-keys grid for both sorters; the hypothesis test fuzzes the
memory budget, pool size, and document shape on top.

The columnar kernel (ISSUE 6) has a stricter contract than the pool:
``kernel="columnar"`` must leave *every* counter - reads, writes,
sequential/random classification, tokens, comparisons, merge
comparisons, cache traffic - and the per-phase trace breakdown
bit-identical to the scalar path.  :class:`TestKernelParity` pins that
across the same grid, pooled and unpooled, and the fuzz suite draws the
kernel axis too.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import external_merge_sort
from repro.core import nexsort
from repro.generators import level_fanout_events
from repro.io import BlockDevice, RunStore
from repro.keys import ByAttribute, SortSpec
from repro.merge.engine import MergeOptions
from repro.obs import Tracer
from repro.xml.compact import CompactionConfig
from repro.xml.document import Document

SPEC = SortSpec(default=ByAttribute("name"))

GRID = list(
    itertools.product(
        ["load-sort", "replacement-selection"],
        ["heap", "loser-tree"],
        [False, True],
    )
)

#: Compaction axis of the kernel-parity grid (Section 3.2): no
#: compaction, name dictionary only, and the full config (dictionary +
#: end-tag elimination).
COMPACTION_MODES = [None, "names", "full"]


def make_compaction(mode):
    if mode is None:
        return None
    if mode == "names":
        return CompactionConfig(eliminate_end_tags=False)
    if mode == "levels":
        return CompactionConfig(names=None)
    return CompactionConfig()


def sort_once(
    algorithm, memory, cache, options, fanouts=(6, 6, 6), seed=3,
    compaction=None,
):
    device = BlockDevice(block_size=512)
    store = RunStore(device)
    document = Document.from_events(
        store,
        level_fanout_events(list(fanouts), seed=seed, pad_bytes=24),
        compaction=make_compaction(compaction),
    )
    sorter = nexsort if algorithm == "nexsort" else external_merge_sort
    output, _report = sorter(
        document,
        SPEC,
        memory_blocks=memory,
        cache_blocks=cache,
        merge_options=options,
    )
    return output.to_string(), device.stats.snapshot().counter_totals()


def sort_traced(
    algorithm, memory, cache, options, fanouts=(6, 6, 6), seed=3,
    compaction=None,
):
    """Like sort_once, plus the per-phase trace breakdown."""
    device = BlockDevice(block_size=512)
    store = RunStore(device)
    document = Document.from_events(
        store,
        level_fanout_events(list(fanouts), seed=seed, pad_bytes=24),
        compaction=make_compaction(compaction),
    )
    tracer = Tracer(device.stats)
    sorter = nexsort if algorithm == "nexsort" else external_merge_sort
    output, _report = sorter(
        document,
        SPEC,
        memory_blocks=memory,
        cache_blocks=cache,
        merge_options=options,
        tracer=tracer,
    )
    trace = tracer.finish()
    return (
        output.to_string(),
        device.stats.snapshot().counter_totals(),
        trace.phase_breakdown(),
    )


def assert_parity(unpooled, pooled):
    text_u, totals_u = unpooled
    text_p, totals_p = pooled
    assert text_p == text_u
    for key in ("tokens", "comparisons", "merge_comparisons"):
        assert totals_p[key] == totals_u[key], key
    assert totals_p["writes"] <= totals_u["writes"]
    assert (
        totals_p["reads"] + totals_p["cache_hits"] >= totals_u["reads"]
    )
    # The unpooled run must be genuinely unpooled.
    assert totals_u["cache_hits"] == 0
    assert totals_u["cache_misses"] == 0


class TestMergeOptionsGrid:
    @pytest.mark.parametrize("algorithm", ["nexsort", "merge_sort"])
    @pytest.mark.parametrize(
        "run_formation,merge_kernel,embedded_keys", GRID
    )
    def test_pool_is_transparent(
        self, algorithm, run_formation, merge_kernel, embedded_keys
    ):
        options = MergeOptions(
            run_formation=run_formation,
            merge_kernel=merge_kernel,
            embedded_keys=embedded_keys,
        )
        cache = 4
        unpooled = sort_once(algorithm, 12, 0, options)
        pooled = sort_once(algorithm, 12 + cache, cache, options)
        assert_parity(unpooled, pooled)
        # The pool actually did something on this workload.
        assert pooled[1]["cache_misses"] > 0


class TestKernelParity:
    """``kernel="columnar"`` is counter-transparent, bit for bit.

    Unlike the pool contract (which may trade reads for hits), the
    kernel axis allows no drift at all: same output bytes, same counter
    totals including the sequential/random I/O split, same per-phase
    breakdown.
    """

    @pytest.mark.parametrize("algorithm", ["nexsort", "merge_sort"])
    @pytest.mark.parametrize(
        "run_formation,merge_kernel,embedded_keys", GRID
    )
    def test_columnar_matches_scalar_unpooled(
        self, algorithm, run_formation, merge_kernel, embedded_keys
    ):
        scalar = sort_traced(
            algorithm,
            12,
            0,
            MergeOptions(
                run_formation=run_formation,
                merge_kernel=merge_kernel,
                embedded_keys=embedded_keys,
                kernel="scalar",
            ),
        )
        columnar = sort_traced(
            algorithm,
            12,
            0,
            MergeOptions(
                run_formation=run_formation,
                merge_kernel=merge_kernel,
                embedded_keys=embedded_keys,
                kernel="columnar",
            ),
        )
        assert columnar[0] == scalar[0]  # output document
        assert columnar[1] == scalar[1]  # every counter total
        assert columnar[2] == scalar[2]  # per-phase breakdown

    @pytest.mark.parametrize("algorithm", ["nexsort", "merge_sort"])
    @pytest.mark.parametrize("compaction", ["names", "levels", "full"])
    @pytest.mark.parametrize("embedded_keys", [False, True])
    def test_columnar_matches_scalar_compacted(
        self, algorithm, compaction, embedded_keys
    ):
        """The kernel contract holds under Section 3.2 compaction too.

        ISSUE 7: ``kernel="columnar"`` no longer falls back to scalar on
        dictionary-coded or end-tag-eliminated documents - and stays bit
        identical on output, counters, and the per-phase breakdown.
        """

        def run(kernel):
            return sort_traced(
                algorithm,
                12,
                0,
                MergeOptions(kernel=kernel, embedded_keys=embedded_keys),
                compaction=compaction,
            )

        assert run("columnar") == run("scalar")

    @pytest.mark.parametrize("algorithm", ["nexsort", "merge_sort"])
    def test_columnar_matches_scalar_pooled(self, algorithm):
        for kernel_options in ({}, {"embedded_keys": True}):
            scalar = sort_traced(
                algorithm,
                16,
                4,
                MergeOptions(kernel="scalar", **kernel_options),
            )
            columnar = sort_traced(
                algorithm,
                16,
                4,
                MergeOptions(kernel="columnar", **kernel_options),
            )
            assert columnar == scalar


class TestFuzzedParity:
    @settings(max_examples=12, deadline=None)
    @given(
        algorithm=st.sampled_from(["nexsort", "merge_sort"]),
        run_formation=st.sampled_from(
            ["load-sort", "replacement-selection"]
        ),
        merge_kernel=st.sampled_from(["heap", "loser-tree"]),
        embedded_keys=st.booleans(),
        kernel=st.sampled_from(["scalar", "columnar"]),
        memory=st.integers(min_value=10, max_value=16),
        cache=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=1, max_value=4),
        fanouts=st.sampled_from([(6, 6, 6), (4, 5, 6), (3, 4, 4, 3)]),
    )
    def test_pool_is_transparent_fuzzed(
        self,
        algorithm,
        run_formation,
        merge_kernel,
        embedded_keys,
        kernel,
        memory,
        cache,
        seed,
        fanouts,
    ):
        options = MergeOptions(
            run_formation=run_formation,
            merge_kernel=merge_kernel,
            embedded_keys=embedded_keys,
            kernel=kernel,
        )
        unpooled = sort_once(
            algorithm, memory, 0, options, fanouts=fanouts, seed=seed
        )
        pooled = sort_once(
            algorithm,
            memory + cache,
            cache,
            options,
            fanouts=fanouts,
            seed=seed,
        )
        assert_parity(unpooled, pooled)

    @settings(max_examples=16, deadline=None)
    @given(
        algorithm=st.sampled_from(["nexsort", "merge_sort"]),
        run_formation=st.sampled_from(
            ["load-sort", "replacement-selection"]
        ),
        merge_kernel=st.sampled_from(["heap", "loser-tree"]),
        embedded_keys=st.booleans(),
        memory=st.integers(min_value=10, max_value=16),
        cache=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=1, max_value=4),
        fanouts=st.sampled_from([(6, 6, 6), (4, 5, 6), (3, 4, 4, 3)]),
        compaction=st.sampled_from([None, "names", "levels", "full"]),
    )
    def test_kernels_bit_identical_fuzzed(
        self,
        algorithm,
        run_formation,
        merge_kernel,
        embedded_keys,
        memory,
        cache,
        seed,
        fanouts,
        compaction,
    ):
        def run(kernel):
            return sort_traced(
                algorithm,
                memory + cache,
                cache,
                MergeOptions(
                    run_formation=run_formation,
                    merge_kernel=merge_kernel,
                    embedded_keys=embedded_keys,
                    kernel=kernel,
                ),
                fanouts=fanouts,
                seed=seed,
                compaction=compaction,
            )

        assert run("columnar") == run("scalar")
