"""Tests for the order-preserving merge (paper Section 1)."""

from repro.generators import figure1_spec
from repro.io import BlockDevice, RunStore
from repro.merge import (
    annotate_sequence_numbers,
    merge_preserving_order,
    strip_sequence_numbers,
)
from repro.merge.order_preserving import SEQUENCE_ATTRIBUTE
from repro.xml import Document, Element


def fresh_store():
    device = BlockDevice(block_size=256)
    return device, RunStore(device)


class TestAnnotation:
    def test_sequence_numbers_are_sibling_indexes(self, spec):
        _device, store = fresh_store()
        doc = Document.from_element(
            store,
            Element.parse('<r><a name="z"/><a name="y"/><a name="x"/></r>'),
        )
        annotated = annotate_sequence_numbers(doc)
        tree = annotated.to_element()
        assert [
            c.attrs[SEQUENCE_ATTRIBUTE] for c in tree.children
        ] == ["0", "1", "2"]
        assert tree.attrs[SEQUENCE_ATTRIBUTE] == "0"

    def test_offset_applies(self, spec):
        _device, store = fresh_store()
        doc = Document.from_element(
            store, Element.parse('<r><a name="z"/></r>')
        )
        annotated = annotate_sequence_numbers(doc, offset=100)
        child = annotated.to_element().children[0]
        assert child.attrs[SEQUENCE_ATTRIBUTE] == "100"

    def test_strip_is_inverse(self, spec):
        _device, store = fresh_store()
        tree = Element.parse('<r><a name="z">text</a><b name="y"/></r>')
        doc = Document.from_element(store, tree)
        round_tripped = strip_sequence_numbers(
            annotate_sequence_numbers(doc)
        )
        assert round_tripped.to_element() == tree


class TestOrderPreservingMerge:
    def test_left_order_survives_merge(self):
        """The merged document keeps the left document's child order even
        though the merge itself required sorted inputs."""
        _device, store = fresh_store()
        spec = figure1_spec()
        left = Document.from_element(
            store,
            Element.parse(
                '<company><region name="Z"><branch name="B2"/></region>'
                '<region name="A"><branch name="B1"/></region></company>'
            ),
        )
        right = Document.from_element(
            store,
            Element.parse(
                '<company><region name="A"><branch name="B3"/></region>'
                "</company>"
            ),
        )
        merged, report = merge_preserving_order(
            left, right, spec, memory_blocks=8
        )
        tree = merged.to_element()
        # Left order: Z before A (NOT sorted order).
        assert [r.attrs["name"] for r in tree.find_all("region")] == [
            "Z",
            "A",
        ]
        # The A region merged: B1 (left) before B3 (right-only).
        region_a = tree.find_all("region")[1]
        assert [b.attrs["name"] for b in region_a.find_all("branch")] == [
            "B1",
            "B3",
        ]
        assert report.elements_merged >= 2

    def test_no_sequence_attributes_leak(self):
        _device, store = fresh_store()
        spec = figure1_spec()
        left = Document.from_element(
            store, Element.parse('<c><r name="2"/><r name="1"/></c>')
        )
        right = Document.from_element(
            store, Element.parse('<c><r name="3"/></c>')
        )
        merged, _report = merge_preserving_order(
            left, right, spec, memory_blocks=8
        )
        for node in merged.to_element().iter():
            assert SEQUENCE_ATTRIBUTE not in node.attrs

    def test_merge_content_matches_plain_structural_merge(self):
        from repro.core import nexsort
        from repro.merge import structural_merge
        from repro.generators import payroll_events, personnel_events

        _device, store = fresh_store()
        spec = figure1_spec()
        left = Document.from_events(store, personnel_events(2, 2, 6))
        right = Document.from_events(store, payroll_events(2, 2, 6))

        preserved, _ = merge_preserving_order(
            left, right, spec, memory_blocks=8
        )
        sorted_left, _ = nexsort(left, spec, memory_blocks=8)
        sorted_right, _ = nexsort(right, spec, memory_blocks=8)
        plain, _ = structural_merge(sorted_left, sorted_right, spec)
        assert (
            preserved.to_element().unordered_canonical()
            == plain.to_element().unordered_canonical()
        )

    def test_identity_merge_is_order_identity(self, spec):
        _device, store = fresh_store()
        tree = Element.parse(
            '<r name="r"><a name="9"/><a name="1"/><a name="5"/></r>'
        )
        left = Document.from_element(store, tree)
        right = Document.from_element(store, tree)
        merged, _report = merge_preserving_order(
            left, right, spec, memory_blocks=8
        )
        assert merged.to_element() == tree
