"""Tests for IDREF-resolved ordering (the paper's stated future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ByIdRef,
    nexsort_with_idrefs,
    resolve_idref_keys,
    sortable_atom_string,
)
from repro.core.idref import RESOLVED_ATTRIBUTE
from repro.errors import SortSpecError
from repro.io import BlockDevice, RunStore
from repro.keys import ByAttribute, SortSpec
from repro.xml import Document, Element
from repro.xml.tokens import MISSING_KEY, number_key, string_key

ORG = """
<org name="root">
  <managers name="managers">
    <person id="m1" name="Walker"/>
    <person id="m2" name="Adams"/>
    <person id="m3" name="Nguyen"/>
  </managers>
  <employees name="employees">
    <employee badge="1" managerRef="m3"/>
    <employee badge="2" managerRef="m1"/>
    <employee badge="3" managerRef="m2"/>
    <employee badge="4" managerRef="m1"/>
  </employees>
</org>
"""


def fresh_doc(xml=ORG):
    device = BlockDevice(block_size=256)
    store = RunStore(device)
    return Document.from_element(store, Element.parse(xml))


def org_spec() -> SortSpec:
    return SortSpec(
        default=ByAttribute("name", missing_uses_tag=True),
        rules={
            "employee": ByIdRef("managerRef", id_attribute="id"),
            "person": ByAttribute("id"),
        },
    )


class TestSortableAtomString:
    @settings(max_examples=120, deadline=None)
    @given(
        a=st.floats(allow_nan=False, allow_infinity=False),
        b=st.floats(allow_nan=False, allow_infinity=False),
    )
    def test_number_order_preserved(self, a, b):
        sa = sortable_atom_string(number_key(a))
        sb = sortable_atom_string(number_key(b))
        if a < b:
            assert sa < sb
        elif a > b:
            assert sa > sb
        else:
            assert sa == sb

    def test_kind_ordering(self):
        missing = sortable_atom_string(MISSING_KEY)
        number = sortable_atom_string(number_key(-5))
        string = sortable_atom_string(string_key("a"))
        assert missing < number < string

    @settings(max_examples=80, deadline=None)
    @given(a=st.text(max_size=15), b=st.text(max_size=15))
    def test_string_order_preserved(self, a, b):
        sa = sortable_atom_string(string_key(a))
        sb = sortable_atom_string(string_key(b))
        assert (sa < sb) == (a < b)


class TestResolution:
    def test_resolved_attribute_attached(self):
        doc = fresh_doc()
        resolved = resolve_idref_keys(doc, org_spec(), memory_blocks=8)
        tree = resolved.to_element()
        employees = tree.find("employees").find_all("employee")
        values = {
            e.attrs["badge"]: e.attrs.get(RESOLVED_ATTRIBUTE)
            for e in employees
        }
        assert values["2"] == values["4"]  # both reference m1
        assert values["1"] != values["2"]
        assert all(value is not None for value in values.values())

    def test_spec_without_idrefs_is_identity(self, spec):
        doc = fresh_doc()
        assert resolve_idref_keys(doc, spec, memory_blocks=8) is doc

    def test_default_idref_rule_rejected(self):
        doc = fresh_doc()
        bad = SortSpec(default=ByIdRef("ref"))
        with pytest.raises(SortSpecError):
            resolve_idref_keys(doc, bad, memory_blocks=8)

    def test_plain_nexsort_rejects_byidref(self):
        rule = ByIdRef("managerRef")
        with pytest.raises(SortSpecError):
            rule.key_of_element(Element("employee"))


class TestSortingThroughReferences:
    def test_employees_ordered_by_manager_name(self):
        doc = fresh_doc()
        result, _report = nexsort_with_idrefs(
            doc, org_spec(), memory_blocks=8
        )
        tree = result.to_element()
        employees = tree.find("employees").find_all("employee")
        badges = [e.attrs["badge"] for e in employees]
        # Manager names: m1=Walker, m2=Adams, m3=Nguyen.
        # Order by manager name: Adams(3), Nguyen(1), Walker(2,4).
        assert badges == ["3", "1", "2", "4"]

    def test_temporary_attribute_stripped(self):
        doc = fresh_doc()
        result, _report = nexsort_with_idrefs(
            doc, org_spec(), memory_blocks=8
        )
        for node in result.to_element().iter():
            assert RESOLVED_ATTRIBUTE not in node.attrs

    def test_dangling_references_sort_first(self):
        xml = """
        <org name="root">
          <person id="m1" name="Z"/>
          <employee badge="1" managerRef="m1"/>
          <employee badge="2" managerRef="nope"/>
        </org>
        """
        doc = fresh_doc(xml)
        spec = SortSpec(
            default=ByAttribute("name", missing_uses_tag=True),
            rules={"employee": ByIdRef("managerRef")},
        )
        result, _report = nexsort_with_idrefs(doc, spec, memory_blocks=8)
        employees = result.to_element().find_all("employee")
        assert [e.attrs["badge"] for e in employees] == ["2", "1"]

    def test_other_levels_still_sorted_normally(self):
        doc = fresh_doc()
        result, _report = nexsort_with_idrefs(
            doc, org_spec(), memory_blocks=8
        )
        tree = result.to_element()
        # Top level orders by name: employees < managers.
        assert [c.tag for c in tree.children] == ["employees", "managers"]
        # Persons order by their own id.
        ids = [p.attrs["id"] for p in tree.find("managers").children]
        assert ids == ["m1", "m2", "m3"]

    def test_io_is_counted_for_resolution(self):
        doc = fresh_doc()
        device = doc.device
        before = device.stats.snapshot()
        nexsort_with_idrefs(doc, org_spec(), memory_blocks=8)
        delta = device.stats.since(before)
        assert delta.category_total("idref_scan") > 0
        assert delta.category_total("idref_rewrite") > 0
        assert delta.category_total("idref_strip") > 0

    def test_many_references_external_path(self):
        """Enough references to force multi-run external sorting of the
        reference streams."""
        import random

        rng = random.Random(5)
        people = "".join(
            f'<person id="p{i}" name="N{rng.randrange(1000):04d}"/>'
            for i in range(200)
        )
        employees = "".join(
            f'<employee badge="{i}" ref="p{rng.randrange(200)}"/>'
            for i in range(300)
        )
        xml = f'<org name="r">{people}{employees}</org>'
        doc = fresh_doc(xml)
        spec = SortSpec(
            default=ByAttribute("name", missing_uses_tag=True),
            rules={
                "employee": ByIdRef("ref", id_attribute="id"),
                "person": ByAttribute("id", numeric_coercion=False),
            },
        )
        result, _report = nexsort_with_idrefs(doc, spec, memory_blocks=8)
        tree = result.to_element()
        # Verify against a brute-force resolution.
        name_of = {
            p.attrs["id"]: p.attrs["name"]
            for p in tree.find_all("person")
        }
        resolved_names = [
            name_of[e.attrs["ref"]] for e in tree.find_all("employee")
        ]
        assert resolved_names == sorted(resolved_names)
