"""Cross-cutting property tests: all sorters agree, structure preserved."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import external_merge_sort, is_fully_sorted, sort_element
from repro.core import nexsort
from repro.io import BlockDevice, RunStore
from repro.keys import ByAttribute, SortSpec
from repro.xml import CompactionConfig, Document, Element

SPEC = SortSpec(default=ByAttribute("name"))


@st.composite
def document_tree(draw, max_depth=4):
    """Random documents with duplicate-prone keys and optional text."""

    def node(depth):
        name = draw(st.integers(min_value=0, max_value=30))
        children = []
        if depth < max_depth:
            count = draw(st.integers(min_value=0, max_value=4))
            children = [node(depth + 1) for _ in range(count)]
        text = ""
        if not children and draw(st.booleans()):
            text = f"t{draw(st.integers(min_value=0, max_value=99))}"
        return Element("n", {"name": f"k{name:03d}"}, text, children)

    return node(1)


settings_kwargs = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSorterAgreement:
    @settings(**settings_kwargs)
    @given(tree=document_tree())
    def test_nexsort_matches_oracle(self, tree):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        result, _report = nexsort(doc, SPEC, memory_blocks=6)
        assert result.to_element() == sort_element(tree, SPEC)

    @settings(**settings_kwargs)
    @given(tree=document_tree())
    def test_merge_sort_matches_oracle(self, tree):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        result, _report = external_merge_sort(doc, SPEC, memory_blocks=4)
        assert result.to_element() == sort_element(tree, SPEC)

    @settings(**settings_kwargs)
    @given(
        tree=document_tree(),
        threshold=st.sampled_from([48, 128, 512]),
    )
    def test_nexsort_threshold_invariance(self, tree, threshold):
        """Any threshold yields the same sorted document."""
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        result, _report = nexsort(
            doc, SPEC, memory_blocks=6, threshold_bytes=threshold
        )
        assert result.to_element() == sort_element(tree, SPEC)

    @settings(**settings_kwargs)
    @given(tree=document_tree())
    def test_compact_and_plain_agree(self, tree):
        plain_device = BlockDevice(block_size=256)
        plain_store = RunStore(plain_device)
        plain_doc = Document.from_element(plain_store, tree)
        plain, _ = nexsort(plain_doc, SPEC, memory_blocks=6)

        compact_device = BlockDevice(block_size=256)
        compact_store = RunStore(compact_device)
        compact_doc = Document.from_element(
            compact_store, tree, CompactionConfig()
        )
        compact, _ = nexsort(compact_doc, SPEC, memory_blocks=6)
        assert plain.to_element() == compact.to_element()


class TestStructuralInvariants:
    @settings(**settings_kwargs)
    @given(tree=document_tree())
    def test_sorting_preserves_unordered_structure(self, tree):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        result, _report = nexsort(doc, SPEC, memory_blocks=6)
        assert (
            result.to_element().unordered_canonical()
            == tree.unordered_canonical()
        )

    @settings(**settings_kwargs)
    @given(tree=document_tree())
    def test_output_is_fully_sorted(self, tree):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        result, _report = nexsort(doc, SPEC, memory_blocks=6)
        assert is_fully_sorted(result.to_element(), SPEC)

    @settings(**settings_kwargs)
    @given(tree=document_tree())
    def test_lemma_4_6_holds_for_every_document(self, tree):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        _result, report = nexsort(
            doc, SPEC, memory_blocks=6, threshold_bytes=96
        )
        assert report.sum_si == report.element_count - 1 + report.x


class TestMergeProperties:
    @settings(**settings_kwargs)
    @given(tree=document_tree())
    def test_split_then_merge_recovers_children(self, tree):
        """Splitting a document's children and merging the sorted halves
        recovers every child (an outerjoin identity)."""
        from repro.merge import structural_merge

        device = BlockDevice(block_size=256)
        store = RunStore(device)
        left_tree = Element(
            tree.tag, {"name": "root"}, tree.text, tree.children[0::2]
        )
        right_tree = Element(
            tree.tag, {"name": "root"}, tree.text, tree.children[1::2]
        )
        left_doc = Document.from_element(store, left_tree)
        right_doc = Document.from_element(store, right_tree)
        left, _ = nexsort(left_doc, SPEC, memory_blocks=6)
        right, _ = nexsort(right_doc, SPEC, memory_blocks=6)
        merged, report = structural_merge(left, right, SPEC)
        total_children = sum(
            1 for _ in merged.to_element().children
        )
        # Children with identical keys merge pairwise; everything else
        # survives individually, so counts can only shrink by the number
        # of key collisions across the halves.
        assert total_children <= len(tree.children)
        assert is_fully_sorted(merged.to_element(), SPEC)
