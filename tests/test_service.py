"""Service-layer tests: workload parsing, scheduling, admission, chaos.

Everything the multi-tenant layer promises is pinned here at CI scale:
deterministic Poisson workloads, fair and strict-priority interleaving
over shared disks, per-tenant counter isolation that tiles exactly to
the pool totals, admission verdicts grounded in the cost bounds, and
the headline guarantee - a scheduled job is bit-identical (output
digest, counters, phase breakdown) to the same job run alone, fault
plans included.
"""

import pytest

from repro.errors import ServiceError
from repro.io.lease import ResourcePool
from repro.service import (
    AdmissionController,
    JobSpec,
    Scheduler,
    WorkloadSpec,
    parse_workload,
    percentile,
    run_solo,
)

BLOCK_SIZE = 512


def make_pool(blocks=64, disks=4):
    return ResourcePool(blocks, block_size=BLOCK_SIZE, disks=disks)


def schedule(workload, policy="fair", blocks=64, disks=4, **kwargs):
    pool = make_pool(blocks, disks)
    scheduler = Scheduler(pool, policy=policy, **kwargs)
    report = scheduler.run(parse_workload(workload))
    return report


class TestWorkloadParsing:
    def test_full_spec(self):
        spec = WorkloadSpec.parse(
            "jobs=8;rate=2.0;seed=7;shape=4x4x4;memory=24;cache=4;"
            "algorithm=mergesort;priority=0-3;pad=16"
        )
        assert spec.job_count == 8
        assert spec.rate == 2.0
        assert spec.shape == (4, 4, 4)
        assert spec.algorithm == "mergesort"
        assert spec.priority_range == (0, 3)
        assert spec.pad_bytes == 16

    def test_jobs_are_deterministic(self):
        text = "jobs=5;rate=3.0;seed=9;priority=0-5"
        assert parse_workload(text) == parse_workload(text)

    def test_rate_zero_means_burst_at_t0(self):
        jobs = parse_workload("jobs=3")
        assert [job.arrival for job in jobs] == [0.0, 0.0, 0.0]

    def test_arrivals_are_nondecreasing(self):
        jobs = parse_workload("jobs=6;rate=4.0;seed=1")
        arrivals = [job.arrival for job in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0

    @pytest.mark.parametrize(
        "bad",
        [
            "jobs",  # no '='
            "jobs=zero",
            "jobs=0",
            "rate=-1",
            "shape=4x0",
            "algorithm=quicksort",
            "priority=3-1",
            "tenancy=9",  # unknown key
        ],
    )
    def test_bad_clauses_raise(self, bad):
        with pytest.raises(ServiceError):
            parse_workload(bad)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile([], 0.5) == 0.0


class TestScheduling:
    WORKLOAD = "jobs=6;rate=3.0;seed=7;shape=4x4x4;memory=16;cache=2"

    def test_all_jobs_complete_and_tile(self):
        report = schedule(self.WORKLOAD)
        assert len(report.completed) == 6
        report.verify_isolation()
        assert report.isolation_errors() == []
        assert report.makespan_seconds > 0
        assert report.throughput_jobs_per_second > 0

    def test_deterministic_schedule(self):
        first = schedule(self.WORKLOAD)
        second = schedule(self.WORKLOAD)
        assert [r.completed_seconds for r in first.results] == (
            [r.completed_seconds for r in second.results]
        )
        assert [r.digest for r in first.results] == (
            [r.digest for r in second.results]
        )

    def test_scheduled_matches_solo_bit_for_bit(self):
        report = schedule(self.WORKLOAD)
        for result in report.completed:
            solo = run_solo(
                result.spec,
                memory_blocks=result.decision.memory_blocks,
                cache_blocks=result.decision.cache_blocks,
                block_size=BLOCK_SIZE,
            )
            assert result.digest == solo.digest
            assert result.counters == solo.counters
            assert result.phases == solo.phases

    def test_sharing_disks_beats_serial(self):
        # A burst at t=0 so the makespan has no arrival gaps in it:
        # overlapping I/O across 4 disks must beat back-to-back runs.
        report = schedule(
            "jobs=6;shape=4x4x4;memory=16;cache=2;seed=7", disks=4
        )
        serial = sum(r.service_seconds for r in report.completed)
        assert report.makespan_seconds < serial

    def test_priority_jumps_the_queue(self):
        # Two coexisting priority classes in one burst: strict priority
        # must complete every high-priority job before any low one.
        workload = (
            "jobs=4;seed=3;shape=4x4x4;memory=16;priority=0-1"
        )
        report = schedule(workload, policy="priority", blocks=80)
        done = {
            r.spec.tenant: r.completed_seconds for r in report.completed
        }
        jobs = parse_workload(workload)
        highs = [done[j.tenant] for j in jobs if j.priority == 1]
        lows = [done[j.tenant] for j in jobs if j.priority == 0]
        assert highs and lows  # seed 3 draws both classes
        assert max(highs) <= min(lows)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ServiceError, match="policy"):
            Scheduler(make_pool(), policy="lottery")


class TestAdmission:
    def job(self, memory=16, cache=0, algorithm="nexsort"):
        return JobSpec(
            tenant="t", arrival=0.0, algorithm=algorithm,
            fanouts=(4, 4, 4), memory_blocks=memory, cache_blocks=cache,
        )

    def test_admit_when_it_fits(self):
        controller = AdmissionController(make_pool(32))
        decision = controller.decide(self.job(memory=16))
        assert decision.action == "admit"
        assert decision.memory_blocks == 16
        assert decision.predicted_seconds > 0

    def test_degrade_sheds_cache_first(self):
        pool = make_pool(32)
        pool.lease(20, tenant="incumbent")
        controller = AdmissionController(pool)
        decision = controller.decide(self.job(memory=16, cache=6))
        assert decision.action == "degrade"
        assert decision.cache_blocks == 0
        assert decision.memory_blocks == 10
        assert "cache" in decision.reason

    def test_degraded_grant_never_below_arge_thorup_floor(self):
        # Pool-draining regression: as incumbents eat the pool one
        # block at a time, every degraded grant must stay at or above
        # the Arge-Thorup floor - the old code degraded to whatever
        # was free, landing jobs below the provable-extra-pass
        # boundary it was supposed to refuse.
        job = self.job(memory=24, cache=4)
        for leased in range(1, 32):
            pool = make_pool(32)
            pool.lease(leased, tenant="incumbent")
            controller = AdmissionController(pool)
            floor = controller.arge_thorup_floor(job)
            decision = controller.decide(job)
            if decision.action == "degrade":
                assert decision.memory_blocks >= floor, (
                    f"leased={leased}: granted "
                    f"{decision.memory_blocks} < floor {floor}"
                )
            elif pool.available_blocks < floor:
                # Too drained to clear the floor: must wait, not run.
                assert decision.action == "queue"

    def test_drained_pool_queues_instead_of_degrading(self):
        job = self.job(memory=24, cache=4)
        pool = make_pool(32)
        controller = AdmissionController(pool)
        floor = controller.arge_thorup_floor(job)
        pool.lease(32 - floor + 1, tenant="incumbent")
        decision = controller.decide(job)
        assert decision.action == "queue"

    def test_degraded_grant_replans_its_knobs(self):
        pool = make_pool(32)
        pool.lease(20, tenant="incumbent")
        controller = AdmissionController(pool, plan=True)
        decision = controller.decide(self.job(memory=16, cache=6))
        assert decision.action == "degrade"
        assert decision.plan is not None
        assert decision.plan.algorithm == "nexsort"
        assert decision.plan.memory_blocks == decision.memory_blocks
        assert decision.cache_blocks == decision.plan.cache_blocks
        assert (
            decision.plan.working_blocks
            >= controller._floor_blocks(self.job())
        )
        assert "re-planned" in decision.reason

    def test_planless_controller_attaches_no_plan(self):
        pool = make_pool(32)
        pool.lease(20, tenant="incumbent")
        controller = AdmissionController(pool)
        decision = controller.decide(self.job(memory=16, cache=6))
        assert decision.action == "degrade"
        assert decision.plan is None

    def test_queue_when_nothing_fits_now(self):
        pool = make_pool(32)
        pool.lease(28, tenant="incumbent")
        controller = AdmissionController(pool)
        decision = controller.decide(self.job(memory=16))
        assert decision.action == "queue"

    def test_reject_below_the_floor(self):
        controller = AdmissionController(make_pool(32))
        decision = controller.decide(self.job(memory=4))
        assert decision.action == "reject"
        assert "minimum" in decision.reason

    def test_reject_when_the_pool_can_never_fit(self):
        controller = AdmissionController(make_pool(4), degrade=False)
        decision = controller.decide(self.job(memory=16))
        assert decision.action == "reject"

    def test_degradation_can_be_disabled(self):
        pool = make_pool(32)
        pool.lease(20, tenant="incumbent")
        controller = AdmissionController(pool, degrade=False)
        decision = controller.decide(self.job(memory=16, cache=6))
        assert decision.action == "queue"

    def test_all_rejected_still_tiles(self):
        # memory=4 is below nexsort's 6-block floor: both jobs are
        # refused, nothing runs, and empty tenant totals tile to the
        # pool's zeros instead of tripping the isolation check.
        report = schedule("jobs=2;memory=4", blocks=32)
        assert not report.completed
        assert len(report.rejected) == 2
        report.verify_isolation()

    def test_queued_jobs_run_after_release(self):
        # Pool fits one 16-block job at a time; both must complete.
        report = schedule(
            "jobs=2;shape=4x4x4;memory=16", blocks=16, disks=1
        )
        assert len(report.completed) == 2
        queued = [
            r for r in report.results if r.queue_seconds and
            r.queue_seconds > 0
        ]
        assert queued  # the second job waited for the first's lease


class TestChaos:
    WORKLOAD = "jobs=4;rate=2.0;seed=5;shape=4x4x4;memory=16"
    PLAN = "rate=0.02;seed=9"

    def test_chaos_run_is_bit_identical_to_solo(self):
        report = schedule(
            self.WORKLOAD, fault_plan=self.PLAN, retries=2
        )
        assert len(report.completed) == 4
        report.verify_isolation()
        assert report.pool_totals["penalty_seconds"] > 0
        for result in report.completed:
            solo = run_solo(
                result.spec,
                memory_blocks=result.decision.memory_blocks,
                cache_blocks=result.decision.cache_blocks,
                block_size=BLOCK_SIZE,
                fault_plan=self.PLAN,
                retries=2,
            )
            assert result.digest == solo.digest
            assert result.counters == solo.counters
