"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.generators import figure1_d1, figure1_d2, figure1_merged
from repro.xml import Element, element_to_string

DTD_TEXT = """
<!ELEMENT company (region*)>
<!ELEMENT region (branch*)>
<!ELEMENT branch (employee*)>
<!ELEMENT employee (name?, phone?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ATTLIST region name CDATA #REQUIRED>
<!ATTLIST branch name CDATA #REQUIRED>
<!ATTLIST employee ID CDATA #REQUIRED>
"""


@pytest.fixture
def d1_file(tmp_path):
    path = tmp_path / "d1.xml"
    path.write_text(element_to_string(figure1_d1(), indent="  "))
    return str(path)


@pytest.fixture
def d2_file(tmp_path):
    path = tmp_path / "d2.xml"
    path.write_text(element_to_string(figure1_d2(), indent="  "))
    return str(path)


class TestSortCommand:
    @pytest.mark.parametrize(
        "algorithm", ["nexsort", "mergesort", "xsort"]
    )
    def test_sorts_to_output_file(
        self, d1_file, tmp_path, algorithm, capsys
    ):
        out = tmp_path / "sorted.xml"
        code = main(
            [
                "sort",
                d1_file,
                "-o",
                str(out),
                "--by",
                "name",
                "--tag-attr",
                "employee=ID",
                "--algorithm",
                algorithm,
                "--memory",
                "8",
            ]
        )
        assert code == 0
        tree = Element.parse(out.read_text())
        regions = [r.attrs["name"] for r in tree.find_all("region")]
        if algorithm != "xsort":  # xsort needs --target for the root list
            assert regions == ["AC", "NE"]

    def test_xsort_with_target(self, d1_file, tmp_path):
        out = tmp_path / "sorted.xml"
        code = main(
            [
                "sort", d1_file, "-o", str(out),
                "--algorithm", "xsort", "--target", "company",
                "--memory", "8",
            ]
        )
        assert code == 0
        tree = Element.parse(out.read_text())
        assert [r.attrs["name"] for r in tree.find_all("region")] == [
            "AC",
            "NE",
        ]

    def test_prints_to_stdout_without_output(self, d1_file, capsys):
        code = main(["sort", d1_file, "--memory", "8"])
        assert code == 0
        assert "<company>" in capsys.readouterr().out

    def test_stats_flag(self, d1_file, capsys):
        code = main(["sort", d1_file, "--memory", "8", "--stats"])
        assert code == 0
        err = capsys.readouterr().err
        assert "total block I/Os" in err
        assert "subtree sorts" in err

    def test_cache_blocks_flag(self, d1_file, tmp_path, capsys):
        out = tmp_path / "sorted.xml"
        code = main(
            [
                "sort", d1_file, "-o", str(out),
                "--memory", "12", "--cache-blocks", "4", "--stats",
            ]
        )
        assert code == 0
        tree = Element.parse(out.read_text())
        regions = [r.attrs["name"] for r in tree.find_all("region")]
        assert regions == ["AC", "NE"]
        assert "cache hits/misses" in capsys.readouterr().err

    def test_cache_blocks_cannot_eat_the_minimum(self, d1_file, capsys):
        code = main(
            ["sort", d1_file, "--memory", "8", "--cache-blocks", "4"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_plan_auto_sorts_and_reports(self, d1_file, tmp_path, capsys):
        out = tmp_path / "planned.xml"
        code = main([
            "sort", d1_file, "-o", str(out),
            "--memory", "12", "--plan", "auto", "--stats",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "plan: " in err
        assert "predicted" in err
        assert out.exists()

    def test_plan_auto_matches_unplanned_output(
        self, d1_file, tmp_path
    ):
        planned = tmp_path / "planned.xml"
        default = tmp_path / "default.xml"
        assert main([
            "sort", d1_file, "-o", str(planned),
            "--memory", "12", "--plan", "auto",
        ]) == 0
        assert main([
            "sort", d1_file, "-o", str(default), "--memory", "12",
        ]) == 0
        # Planning changes knobs, never the sorted result.
        assert planned.read_text() == default.read_text()

    def test_plan_auto_honors_explicit_algorithm(
        self, d1_file, tmp_path, capsys
    ):
        out = tmp_path / "pinned.xml"
        code = main([
            "sort", d1_file, "-o", str(out),
            "--memory", "12", "--plan", "auto",
            "--algorithm", "mergesort", "--stats",
        ])
        assert code == 0
        assert "plan: merge_sort" in capsys.readouterr().err

    def test_plan_auto_rejects_xsort(self, d1_file, capsys):
        code = main([
            "sort", d1_file, "--plan", "auto", "--algorithm", "xsort",
        ])
        assert code == 2
        assert "xsort" in capsys.readouterr().err

    def test_plan_off_emits_no_plan(self, d1_file, tmp_path, capsys):
        out = tmp_path / "sorted.xml"
        assert main([
            "sort", d1_file, "-o", str(out), "--memory", "12",
            "--stats",
        ]) == 0
        assert "plan: " not in capsys.readouterr().err

    def test_compact_and_flat_opt_flags(self, d1_file, tmp_path):
        out = tmp_path / "sorted.xml"
        code = main(
            [
                "sort", d1_file, "-o", str(out),
                "--compact", "--flat-opt", "--memory", "8",
            ]
        )
        assert code == 0
        assert "<company>" in out.read_text()

    def test_scratch_file_backing(self, d1_file, tmp_path):
        scratch = tmp_path / "scratch.bin"
        code = main(
            [
                "sort", d1_file, "--memory", "8",
                "--scratch", str(scratch), "-o",
                str(tmp_path / "out.xml"),
            ]
        )
        assert code == 0
        assert not scratch.exists()  # cleaned up

    def test_missing_file_is_an_error(self, capsys):
        code = main(["sort", "no-such-file.xml"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_tag_attr_is_an_error(self, d1_file, capsys):
        code = main(["sort", d1_file, "--tag-attr", "broken"])
        assert code == 2


class TestMergeCommand:
    def test_figure1_pipeline(self, d1_file, d2_file, tmp_path):
        out = tmp_path / "merged.xml"
        code = main(
            [
                "merge", d1_file, d2_file, "-o", str(out),
                "--by", "name", "--tag-attr", "employee=ID",
                "--depth-limit", "3", "--memory", "8",
            ]
        )
        assert code == 0
        assert Element.parse(out.read_text()) == figure1_merged()

    def test_preserve_order(self, d1_file, d2_file, tmp_path):
        out = tmp_path / "merged.xml"
        code = main(
            [
                "merge", d1_file, d2_file, "-o", str(out),
                "--by", "name", "--tag-attr", "employee=ID",
                "--preserve-order", "--memory", "8",
            ]
        )
        assert code == 0
        tree = Element.parse(out.read_text())
        # D1's original region order: NE before AC.
        assert [r.attrs["name"] for r in tree.find_all("region")][:2] == [
            "NE",
            "AC",
        ]


class TestTable1Command:
    def test_prints_key_paths(self, d1_file, capsys):
        code = main(
            [
                "table1", d1_file,
                "--by", "name", "--tag-attr", "employee=ID",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "/AC/Durham/323/name" in out
        assert "<phone>5552345" in out


class TestValidateCommand:
    def test_valid_document(self, d1_file, tmp_path, capsys):
        dtd = tmp_path / "schema.dtd"
        dtd.write_text(DTD_TEXT)
        code = main(["validate", d1_file, "--dtd", str(dtd)])
        assert code == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_document(self, tmp_path, capsys):
        dtd = tmp_path / "schema.dtd"
        dtd.write_text(DTD_TEXT)
        bad = tmp_path / "bad.xml"
        bad.write_text("<company><rogue/></company>")
        code = main(["validate", str(bad), "--dtd", str(dtd)])
        assert code == 1
        assert "violation" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_prints_geometry_and_bounds(self, d1_file, capsys):
        code = main(["analyze", d1_file, "--memory", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "max fan-out" in out
        assert "Thm 4.4 lower bound" in out
        assert "merge sort passes" in out


class TestDedupCommand:
    def test_sorts_and_removes_duplicates(self, tmp_path, capsys):
        doc = tmp_path / "dup.xml"
        doc.write_text(
            '<r name="r"><a name="2"/><a name="1"/><a name="2"/></r>'
        )
        out = tmp_path / "out.xml"
        code = main(
            [
                "dedup", str(doc), "-o", str(out),
                "--by", "name", "--memory", "8", "--stats",
            ]
        )
        assert code == 0
        tree = Element.parse(out.read_text())
        assert [c.attrs["name"] for c in tree.children] == ["1", "2"]
        assert "duplicate subtrees removed: 1" in capsys.readouterr().err
