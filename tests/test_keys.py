"""Unit tests for ordering criteria and the streaming key evaluator."""

import pytest

from repro.errors import SortSpecError
from repro.keys import (
    ByAttribute,
    ByChildPath,
    ByTag,
    ByText,
    DocumentOrder,
    KeyEvaluator,
    SortSpec,
)
from repro.xml import Element, parse_events
from repro.xml.tokens import (
    EndTag,
    KEY_NUMBER,
    KEY_STRING,
    MISSING_KEY,
    StartTag,
    Text,
)


class TestRules:
    def test_by_attribute_string(self):
        rule = ByAttribute("name")
        element = Element("region", {"name": "Durham"})
        assert rule.key_of_element(element) == (KEY_STRING, "Durham")

    def test_by_attribute_numeric_coercion(self):
        rule = ByAttribute("ID")
        assert rule.key_of_element(Element("e", {"ID": "454"})) == (
            KEY_NUMBER,
            454.0,
        )

    def test_by_attribute_coercion_disabled(self):
        rule = ByAttribute("ID", numeric_coercion=False)
        assert rule.key_of_element(Element("e", {"ID": "454"})) == (
            KEY_STRING,
            "454",
        )

    def test_by_attribute_missing(self):
        rule = ByAttribute("name")
        assert rule.key_of_element(Element("e")) == MISSING_KEY

    def test_by_attribute_missing_uses_tag(self):
        rule = ByAttribute("name", missing_uses_tag=True)
        assert rule.key_of_element(Element("phone")) == (
            KEY_STRING,
            "phone",
        )

    def test_by_tag(self):
        assert ByTag().key_of_element(Element("zeta")) == (KEY_STRING, "zeta")

    def test_document_order_always_missing(self):
        assert DocumentOrder().key_of_element(Element("a")) == MISSING_KEY

    def test_by_text(self):
        assert ByText().key_of_element(Element("a", {}, "42")) == (
            KEY_NUMBER,
            42.0,
        )
        assert ByText().key_of_element(Element("a", {}, "word")) == (
            KEY_STRING,
            "word",
        )
        assert ByText().key_of_element(Element("a")) == MISSING_KEY

    def test_by_child_path(self):
        rule = ByChildPath("personalInfo/name/lastName")
        employee = Element.parse(
            "<employee><personalInfo><name>"
            "<lastName>Smith</lastName></name></personalInfo></employee>"
        )
        assert rule.key_of_element(employee) == (KEY_STRING, "Smith")

    def test_by_child_path_missing(self):
        rule = ByChildPath("a/b")
        assert rule.key_of_element(Element("e")) == MISSING_KEY

    def test_by_child_path_empty_rejected(self):
        with pytest.raises(SortSpecError):
            ByChildPath("").steps()

    def test_start_computable_flags(self):
        assert ByAttribute("x").start_computable
        assert ByTag().start_computable
        assert DocumentOrder().start_computable
        assert not ByText().start_computable
        assert not ByChildPath("a").start_computable

    def test_end_rule_rejects_start_evaluation(self):
        with pytest.raises(SortSpecError):
            ByText().key_from_start(StartTag("a"))


class TestSortSpec:
    def test_rule_for_dispatch(self):
        spec = SortSpec(
            default=ByAttribute("name"), rules={"employee": ByAttribute("ID")}
        )
        assert spec.rule_for("employee").attribute == "ID"
        assert spec.rule_for("region").attribute == "name"

    def test_by_attribute_shorthand(self):
        spec = SortSpec.by_attribute("name", employee="ID")
        assert spec.rule_for("employee").attribute == "ID"
        assert spec.rule_for("anything").attribute == "name"
        assert spec.rule_for("anything").missing_uses_tag

    def test_start_computable_aggregation(self):
        assert SortSpec(default=ByAttribute("x")).start_computable
        assert not SortSpec(
            default=ByAttribute("x"), rules={"a": ByText()}
        ).start_computable

    def test_element_order_is_stable(self):
        spec = SortSpec(default=ByAttribute("name"))
        a1 = Element("a", {"name": "same", "id": "1"})
        a2 = Element("a", {"name": "same", "id": "2"})
        ordered = spec.element_order([a2, a1])
        assert ordered == [a2, a1]  # stable: original order kept on ties

    def test_default_spec_is_document_order(self):
        spec = SortSpec()
        assert isinstance(spec.default, DocumentOrder)


def annotate(xml: str, spec: SortSpec):
    return list(KeyEvaluator(spec).annotate(parse_events(xml)))


class TestKeyEvaluator:
    def test_positions_are_preorder(self):
        spec = SortSpec(default=ByAttribute("name"))
        events = annotate("<a><b><c/></b><d/></a>", spec)
        starts = [e for e in events if isinstance(e, StartTag)]
        assert [s.pos for s in starts] == [0, 1, 2, 3]
        ends = [e for e in events if isinstance(e, EndTag)]
        assert sorted(e.pos for e in ends) == [0, 1, 2, 3]

    def test_levels_assigned(self):
        spec = SortSpec(default=ByAttribute("name"))
        events = annotate("<a><b><c/></b></a>", spec)
        starts = [e for e in events if isinstance(e, StartTag)]
        assert [s.level for s in starts] == [1, 2, 3]

    def test_start_keys_for_start_computable_spec(self):
        spec = SortSpec(default=ByAttribute("name"))
        events = annotate('<a name="root"><b name="kid"/></a>', spec)
        starts = [e for e in events if isinstance(e, StartTag)]
        assert starts[0].key == (KEY_STRING, "root")
        assert starts[1].key == (KEY_STRING, "kid")
        ends = [e for e in events if isinstance(e, EndTag)]
        assert all(e.key is None for e in ends)

    def test_end_keys_for_subtree_spec(self):
        spec = SortSpec(default=ByText())
        events = annotate("<a><b>two</b><b>one</b></a>", spec)
        starts = [e for e in events if isinstance(e, StartTag)]
        assert all(s.key is None for s in starts)
        end_keys = {
            e.pos: e.key for e in events if isinstance(e, EndTag)
        }
        assert end_keys[1] == (KEY_STRING, "two")
        assert end_keys[2] == (KEY_STRING, "one")

    def test_child_path_key_on_end_tag(self):
        spec = SortSpec(
            rules={"employee": ByChildPath("personalInfo/name/lastName")}
        )
        xml = (
            "<company><employee><personalInfo><name>"
            "<lastName>Smith</lastName></name></personalInfo></employee>"
            "</company>"
        )
        events = annotate(xml, spec)
        employee_end = [
            e
            for e in events
            if isinstance(e, EndTag) and e.tag == "employee"
        ][0]
        assert employee_end.key == (KEY_STRING, "Smith")

    def test_child_path_ignores_wrong_depth(self):
        """A lastName at the wrong depth must not match the path."""
        spec = SortSpec(rules={"employee": ByChildPath("name/lastName")})
        xml = (
            "<company><employee><lastName>Wrong</lastName>"
            "<name><lastName>Right</lastName></name></employee></company>"
        )
        events = annotate(xml, spec)
        end = [
            e
            for e in events
            if isinstance(e, EndTag) and e.tag == "employee"
        ][0]
        assert end.key == (KEY_STRING, "Right")

    def test_child_path_nested_same_tag_elements(self):
        """Nested employees each evaluate their own path expression."""
        spec = SortSpec(rules={"emp": ByChildPath("name")})
        xml = (
            "<r><emp><name>outer</name>"
            "<emp><name>inner</name></emp></emp></r>"
        )
        events = annotate(xml, spec)
        keys = [
            e.key
            for e in events
            if isinstance(e, EndTag) and e.tag == "emp"
        ]
        assert keys == [(KEY_STRING, "inner"), (KEY_STRING, "outer")]

    def test_child_path_first_match_wins(self):
        spec = SortSpec(rules={"e": ByChildPath("v")})
        events = annotate("<r><e><v>first</v><v>second</v></e></r>", spec)
        end = [
            e for e in events if isinstance(e, EndTag) and e.tag == "e"
        ][0]
        assert end.key == (KEY_STRING, "first")

    def test_mixed_spec_puts_all_keys_on_ends(self):
        spec = SortSpec(
            default=ByAttribute("name"), rules={"leaf": ByText()}
        )
        events = annotate('<a name="x"><leaf>7</leaf></a>', spec)
        starts = [e for e in events if isinstance(e, StartTag)]
        assert all(s.key is None for s in starts)
        end_keys = {e.tag: e.key for e in events if isinstance(e, EndTag)}
        assert end_keys["a"] == (KEY_STRING, "x")
        assert end_keys["leaf"] == (KEY_NUMBER, 7.0)

    def test_text_passes_through(self):
        spec = SortSpec(default=ByAttribute("name"))
        events = annotate("<a>hello</a>", spec)
        assert Text("hello") in events


class TestByAttributes:
    def test_composite_orders_by_priority(self):
        from repro.keys import ByAttributes

        rule = ByAttributes(("name", "value"))
        a = rule.key_of_element(Element("s", {"name": "temp", "value": "1"}))
        b = rule.key_of_element(Element("s", {"name": "temp", "value": "2"}))
        c = rule.key_of_element(Element("s", {"name": "wind", "value": "0"}))
        assert a < b < c

    def test_all_missing_is_missing(self):
        from repro.keys import ByAttributes

        rule = ByAttributes(("name", "value"))
        assert rule.key_of_element(Element("s")) == MISSING_KEY

    def test_partial_values_still_key(self):
        from repro.keys import ByAttributes

        rule = ByAttributes(("name", "value"))
        key = rule.key_of_element(Element("s", {"name": "temp"}))
        assert key != MISSING_KEY

    def test_start_computable_and_streaming(self):
        from repro.keys import ByAttributes

        spec = SortSpec(default=ByAttributes(("a", "b")))
        assert spec.start_computable
        events = annotate('<r a="1" b="2"><x a="1" b="9"/></r>', spec)
        starts = [e for e in events if isinstance(e, StartTag)]
        assert starts[0].key is not None
        assert starts[0].key < starts[1].key

    def test_nexsort_with_composite_keys(self, store):
        from repro.core import nexsort
        from repro.keys import ByAttributes
        from repro.baselines import sort_element
        from repro.xml import Document

        spec = SortSpec(default=ByAttributes(("name", "value")))
        tree = Element.parse(
            '<r name="r"><s name="t" value="9"/><s name="t" value="1"/>'
            '<s name="a" value="5"/></r>'
        )
        doc = Document.from_element(store, tree)
        result, _ = nexsort(doc, spec, memory_blocks=8)
        assert result.to_element() == sort_element(tree, spec)


class TestNormalizedKeyEdgeCases:
    """Normalized-key ordering edge cases the columnar argsort leans on.

    The columnar kernel discriminates on a fixed-width prefix of these
    bytes and tie-breaks on the full key, so the byte order must be total
    and match tuple-key order exactly - including empty strings,
    multi-byte UTF-8, and keys longer than the embedded prefix width.
    """

    def test_empty_text_sorts_before_everything(self):
        from repro.merge.engine import normalized_path_key

        empty = normalized_path_key((((KEY_STRING, ""), 0),))
        space = normalized_path_key((((KEY_STRING, " "), 0),))
        word = normalized_path_key((((KEY_STRING, "a"), 0),))
        assert empty < space < word
        # ... but missing still sorts before the empty string, matching
        # tuple order (KEY_MISSING=0 < KEY_STRING=2).
        missing = normalized_path_key((((0, 0.0), 0),))
        assert missing < empty

    def test_multibyte_utf8_orders_by_codepoint(self):
        from repro.merge.engine import normalized_string_key

        # UTF-8 byte order == codepoint order; check across 1-, 2-, 3-
        # and 4-byte encodings.
        values = ["z", "é", "Ł", "中", "\U0001f600"]
        normalized = sorted(normalized_string_key(v) for v in values)
        by_codepoint = [
            normalized_string_key(v) for v in sorted(values)
        ]
        assert normalized == by_codepoint
        assert normalized_string_key("z") < normalized_string_key(
            "é"
        )

    def test_keys_longer_than_prefix_tiebreak_on_tail(self):
        from repro.core.columnar import argsort_normalized
        from repro.merge.engine import (
            DEFAULT_KEY_OPTIONS,
            normalized_path_key,
        )

        width = DEFAULT_KEY_OPTIONS.prefix_width
        shared = "x" * (width + 8)  # identical well past the prefix
        keys = [
            normalized_path_key((((KEY_STRING, shared + tail), 0),))
            for tail in ("d", "b", "c", "a", "b")
        ]
        assert all(len(key) > width for key in keys)
        order = argsort_normalized(keys, width)
        assert order == sorted(range(len(keys)), key=keys.__getitem__)
        # Stability: the two equal keys keep input order.
        assert order.index(1) < order.index(4)

    def test_numeric_keys_order_including_negatives_and_zero(self):
        from repro.merge.engine import normalized_path_key

        def key(value):
            return normalized_path_key((((KEY_NUMBER, value), 0),))

        assert key(-0.0) == key(0.0)
        increasing = [-1e300, -2.5, 0.0, 1.0, float("inf")]
        normalized = [key(v) for v in increasing]
        assert normalized == sorted(normalized)
        assert len(set(normalized)) == len(normalized)

    def test_parent_is_strict_prefix_of_child(self):
        from repro.merge.engine import normalized_path_key

        parent = (((KEY_STRING, "a"), 1),)
        child = parent + (((KEY_STRING, "b"), 2),)
        parent_key = normalized_path_key(parent)
        child_key = normalized_path_key(child)
        assert child_key.startswith(parent_key)
        assert parent_key < child_key


class TestKeyOptions:
    def test_default_width(self):
        from repro.merge.engine import KeyOptions

        assert KeyOptions().prefix_width == 24

    @pytest.mark.parametrize(
        "requested,clamped",
        [(1, 8), (8, 8), (9, 16), (24, 24), (25, 32)],
    )
    def test_width_rounds_up_to_multiple_of_8(self, requested, clamped):
        from repro.merge.engine import KeyOptions

        assert KeyOptions(prefix_width=requested).prefix_width == clamped

    def test_width_clamped_to_maximum(self):
        from repro.merge.engine import KeyOptions, MAX_PREFIX_WIDTH

        huge = KeyOptions(prefix_width=10**6)
        assert huge.prefix_width == MAX_PREFIX_WIDTH

    @pytest.mark.parametrize("bad", [0, -1, -24])
    def test_nonpositive_width_rejected(self, bad):
        from repro.merge.engine import KeyOptions

        with pytest.raises(SortSpecError):
            KeyOptions(prefix_width=bad)

    def test_non_int_width_rejected(self):
        from repro.merge.engine import KeyOptions

        with pytest.raises(SortSpecError):
            KeyOptions(prefix_width=24.0)
