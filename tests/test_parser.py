"""Unit and property tests for the streaming XML parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XMLSyntaxError
from repro.xml import Element, element_to_string, parse_events
from repro.xml.tokens import EndTag, StartTag, Text


def events(text, **kwargs):
    return list(parse_events(text, **kwargs))


class TestBasicParsing:
    def test_single_element(self):
        assert events("<a></a>") == [StartTag("a"), EndTag("a")]

    def test_self_closing(self):
        assert events("<a/>") == [StartTag("a"), EndTag("a")]

    def test_attributes(self):
        (start, _end) = events('<a x="1" y=\'two\'/>')
        assert start.attrs == (("x", "1"), ("y", "two"))

    def test_attribute_whitespace_tolerance(self):
        (start, _end) = events('<a  x = "1"   />')
        assert start.attrs == (("x", "1"),)

    def test_nesting(self):
        got = events("<a><b><c/></b></a>")
        assert [type(t).__name__ for t in got] == [
            "StartTag",
            "StartTag",
            "StartTag",
            "EndTag",
            "EndTag",
            "EndTag",
        ]

    def test_text_content(self):
        assert events("<a>hello</a>") == [
            StartTag("a"),
            Text("hello"),
            EndTag("a"),
        ]

    def test_whitespace_only_text_stripped_by_default(self):
        got = events("<a>\n  <b/>\n</a>")
        assert not any(isinstance(t, Text) for t in got)

    def test_whitespace_preserved_on_request(self):
        got = events("<a> <b/> </a>", strip_whitespace=False)
        assert sum(isinstance(t, Text) for t in got) == 2

    def test_namespace_prefix_is_part_of_name(self):
        (start, _end) = events("<ns:a/>")
        assert start.tag == "ns:a"

    def test_names_with_digits_dots_dashes(self):
        (start, _end) = events("<a-1.b_2/>")
        assert start.tag == "a-1.b_2"


class TestEntitiesAndSections:
    def test_predefined_entities_in_text(self):
        got = events("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>")
        assert got[1] == Text("<x> & \"y\" 'z'")

    def test_numeric_entities(self):
        got = events("<a>&#65;&#x42;</a>")
        assert got[1] == Text("AB")

    def test_entities_in_attributes(self):
        (start, _end) = events('<a v="&amp;&lt;"/>')
        assert start.attrs == (("v", "&<"),)

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            events("<a>&nope;</a>")

    def test_cdata(self):
        got = events("<a><![CDATA[<not> & parsed]]></a>")
        assert got[1] == Text("<not> & parsed")

    def test_comments_skipped(self):
        assert events("<a><!-- hi --><b/><!-- bye --></a>") == events(
            "<a><b/></a>"
        )

    def test_processing_instruction_skipped(self):
        got = events('<?xml version="1.0"?><a/>')
        assert got == [StartTag("a"), EndTag("a")]

    def test_doctype_skipped(self):
        got = events('<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>')
        assert got == [StartTag("a"), EndTag("a")]


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "<a>",
            "</a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "text only",
            "<a>unclosed",
            "<a x=1/>",
            '<a x="1" x="2"/>',
            "<a><!-- unterminated </a>",
            "<a><![CDATA[open</a>",
            "<>",
            "< a/>",
            "",
            "<a ='v'/>",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XMLSyntaxError):
            events(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(XMLSyntaxError) as info:
            events("<a>\n<b>\n</a>")
        assert info.value.line == 3

    def test_text_outside_root_rejected(self):
        with pytest.raises(XMLSyntaxError):
            events("<a/>trailing")


@st.composite
def xml_tree(draw, depth=3):
    tag = draw(
        st.text(alphabet="abcdefgh", min_size=1, max_size=5)
    )
    attrs = draw(
        st.dictionaries(
            st.text(alphabet="xyzw", min_size=1, max_size=4),
            st.text(
                alphabet=st.characters(
                    blacklist_categories=("Cs", "Cc"),
                ),
                max_size=12,
            ),
            max_size=3,
        )
    )
    children = []
    if depth > 0:
        children = draw(
            st.lists(xml_tree(depth=depth - 1), max_size=3)
        )
    text = ""
    if not children:
        text = draw(
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                max_size=15,
            )
        ).strip()
    return Element(tag, attrs, text, children)


class TestRoundTripProperty:
    @settings(max_examples=80, deadline=None)
    @given(tree=xml_tree())
    def test_serialize_then_parse_is_identity(self, tree):
        text = element_to_string(tree)
        parsed = Element.parse(text)
        assert parsed == tree

    @settings(max_examples=40, deadline=None)
    @given(tree=xml_tree())
    def test_pretty_printed_output_also_round_trips(self, tree):
        text = element_to_string(tree, indent="  ")
        parsed = Element.parse(text)
        assert parsed == tree
