"""Tests for the ASCII chart renderer used by the benchmark reports."""

from repro.bench import ascii_chart
from repro.bench.reporting import record_table, drain_reports


class TestAsciiChart:
    def test_renders_markers_and_axes(self):
        chart = ascii_chart(
            [1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]}
        )
        assert "*" in chart
        assert "o" in chart
        assert "+--" in chart
        assert "* a" in chart and "o b" in chart

    def test_peak_label_matches_maximum(self):
        chart = ascii_chart([1, 2], {"s": [5.0, 12.5]})
        assert "12.5" in chart

    def test_x_labels_present(self):
        chart = ascii_chart([16, 96], {"s": [1.0, 2.0]})
        assert "16" in chart
        assert "96" in chart

    def test_empty_input(self):
        assert ascii_chart([], {}) == "(no data)"

    def test_zero_values_do_not_crash(self):
        chart = ascii_chart([1, 2], {"s": [0.0, 0.0]})
        assert "|" in chart

    def test_single_point(self):
        chart = ascii_chart([7], {"s": [3.0]})
        assert "*" in chart

    def test_y_label_included(self):
        chart = ascii_chart([1], {"s": [1.0]}, y_label="seconds")
        assert "[y: seconds]" in chart


class TestReportWithChart:
    def test_chart_appears_in_render(self):
        drain_reports()
        record_table(
            "demo",
            ["x"],
            [[1]],
            chart=ascii_chart([1, 2], {"s": [1.0, 2.0]}),
        )
        (report,) = drain_reports()
        rendered = report.render()
        assert "== demo ==" in rendered
        assert "+--" in rendered

    def test_notes_follow_chart(self):
        drain_reports()
        record_table(
            "demo", ["x"], [[1]], notes=["a note"], chart="CHART"
        )
        (report,) = drain_reports()
        rendered = report.render()
        assert rendered.index("CHART") < rendered.index("a note")
