"""Tests for DTD parsing, validation, and dictionary seeding."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xml import Document, Element
from repro.xml.dtd import DTD

COMPANY_DTD = """
<!DOCTYPE company [
  <!ELEMENT company (region*)>
  <!ELEMENT region (branch*)>
  <!ELEMENT branch (employee*)>
  <!ELEMENT employee (name?, phone?, salary?, bonus?)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT phone (#PCDATA)>
  <!ELEMENT salary (#PCDATA)>
  <!ELEMENT bonus (#PCDATA)>
  <!ATTLIST region name CDATA #REQUIRED>
  <!ATTLIST branch name CDATA #REQUIRED>
  <!ATTLIST employee ID CDATA #REQUIRED
                     grade (junior|senior) "junior">
]>
"""


@pytest.fixture
def dtd() -> DTD:
    return DTD.parse(COMPANY_DTD)


class TestParsing:
    def test_elements_parsed(self, dtd):
        assert set(dtd.elements) == {
            "company",
            "region",
            "branch",
            "employee",
            "name",
            "phone",
            "salary",
            "bonus",
        }
        assert dtd.elements["name"].kind == "MIXED"
        assert dtd.elements["company"].kind == "CHILDREN"

    def test_attributes_parsed(self, dtd):
        employee = dtd.attributes["employee"]
        assert employee["ID"].presence == "#REQUIRED"
        assert employee["grade"].att_type == "ENUM"
        assert employee["grade"].enum_values == ("junior", "senior")
        assert employee["grade"].default == "junior"

    def test_empty_and_any(self):
        dtd = DTD.parse("<!ELEMENT a EMPTY><!ELEMENT b ANY>")
        assert dtd.elements["a"].kind == "EMPTY"
        assert dtd.elements["b"].kind == "ANY"

    def test_comments_skipped(self):
        dtd = DTD.parse("<!-- note --><!ELEMENT a EMPTY><!-- also -->")
        assert "a" in dtd.elements

    def test_allowed_children(self, dtd):
        assert dtd.elements["employee"].allowed_children() == {
            "name",
            "phone",
            "salary",
            "bonus",
        }

    def test_bad_model_rejected(self):
        with pytest.raises(XMLSyntaxError):
            DTD.parse("<!ELEMENT a WRONG>")


class TestValidation:
    def test_valid_document(self, dtd):
        from repro.generators import figure1_d1

        assert dtd.is_valid(figure1_d1())

    def test_undeclared_element(self, dtd):
        tree = Element.parse("<company><intruder/></company>")
        violations = dtd.validate(tree)
        messages = " | ".join(str(v) for v in violations)
        assert "not declared" in messages

    def test_missing_required_attribute(self, dtd):
        tree = Element.parse("<company><region/></company>")
        violations = dtd.validate(tree)
        assert any("required attribute 'name'" in str(v) for v in violations)

    def test_enum_value_checked(self, dtd):
        tree = Element.parse(
            '<company><region name="r"><branch name="b">'
            '<employee ID="1" grade="wizard"/></branch></region></company>'
        )
        violations = dtd.validate(tree)
        assert any("grade" in str(v) for v in violations)

    def test_sequence_model_enforced(self):
        dtd = DTD.parse("<!ELEMENT r (a, b)><!ELEMENT a EMPTY>"
                        "<!ELEMENT b EMPTY>")
        assert dtd.is_valid(Element.parse("<r><a/><b/></r>"))
        assert not dtd.is_valid(Element.parse("<r><b/><a/></r>"))
        assert not dtd.is_valid(Element.parse("<r><a/></r>"))

    def test_choice_and_repetition(self):
        dtd = DTD.parse(
            "<!ELEMENT r ((a|b)+, c?)><!ELEMENT a EMPTY>"
            "<!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
        )
        assert dtd.is_valid(Element.parse("<r><a/><b/><a/><c/></r>"))
        assert dtd.is_valid(Element.parse("<r><b/></r>"))
        assert not dtd.is_valid(Element.parse("<r><c/></r>"))
        assert not dtd.is_valid(Element.parse("<r><a/><c/><c/></r>"))

    def test_empty_model_rejects_content(self):
        dtd = DTD.parse("<!ELEMENT a EMPTY>")
        assert not dtd.is_valid(Element.parse("<a>text</a>"))
        assert dtd.is_valid(Element.parse("<a/>"))

    def test_text_in_element_only_model(self):
        dtd = DTD.parse("<!ELEMENT r (a*)><!ELEMENT a EMPTY>")
        assert not dtd.is_valid(Element.parse("<r>words<a/></r>"))

    def test_fixed_attribute(self):
        dtd = DTD.parse(
            '<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "1">'
        )
        assert dtd.is_valid(Element.parse('<a v="1"/>'))
        assert not dtd.is_valid(Element.parse('<a v="2"/>'))

    def test_apply_defaults(self, dtd):
        tree = Element.parse(
            '<company><region name="r"><branch name="b">'
            '<employee ID="1"/></branch></region></company>'
        )
        dtd.apply_defaults(tree)
        employee = tree.find_path("region/branch/employee")
        assert employee.attrs["grade"] == "junior"


class TestDictionarySeeding:
    def test_name_dictionary_covers_all_names(self, dtd):
        names = dtd.name_dictionary()
        for name in ("company", "region", "employee", "ID", "grade"):
            assert name in names

    def test_compaction_config_round_trips_documents(self, dtd, store):
        from repro.generators import figure1_d1

        config = dtd.compaction_config()
        doc = Document.from_element(store, figure1_d1(), config)
        assert doc.to_element() == figure1_d1()

    def test_seeded_dictionary_is_deterministic(self, dtd):
        """Two documents stored with DTD-seeded configs agree on ids -
        the property the structural merge of compacted documents needs."""
        first = dtd.name_dictionary()
        second = dtd.name_dictionary()
        assert first.intern("region") == second.intern("region")
        assert first.intern("ID") == second.intern("ID")
