"""Tests for deterministic fault injection and checkpointed recovery.

Three layers, tested bottom-up: the :class:`FaultPlan` mini-language and
the attempt-counting :class:`FaultInjector`; the backoff-charging
:class:`RetryingDevice`; and the :class:`RecoveryContext` /
device-recovery-hold machinery that restarts failed units of sort work.
The end-to-end classes pin the headline guarantees: a sort that recovers
(by retry or by restart) produces bit-identical output, and a retry-only
recovery leaves every model counter identical too - the only trace is
``penalty_seconds`` on the simulated clock.
"""

import pytest

from repro.errors import (
    DeviceError,
    DeviceFault,
    FaultPlanError,
    RunError,
    SortRecoveryError,
)
from repro.faults import (
    Checkpoint,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RecoveryContext,
    RetryingDevice,
    RetryPolicy,
    build_faulty_device,
)
from repro.io import BlockDevice, RunStore
from repro.io.file_device import FileBackedBlockDevice
from repro.baselines import external_merge_sort
from repro.core import nexsort
from repro.generators import level_fanout_events
from repro.keys import ByAttribute, SortSpec
from repro.xml.document import Document


def make_device(nblocks=32, block_size=256):
    device = BlockDevice(block_size=block_size)
    start = device.allocate(nblocks)
    for i in range(nblocks):
        device.write_block(start + i, bytes([i]) * 8, "setup")
    return device, start


class TestFaultPlanParse:
    def test_single_clause(self):
        plan = FaultPlan.parse("read@5")
        assert plan.rules == (FaultRule("read", 5),)
        assert plan.rate == 0.0

    def test_count_suffix(self):
        (rule,) = FaultPlan.parse("write@3*4").rules
        assert (rule.op, rule.nth, rule.count) == ("write", 3, 4)

    def test_persistent_suffix(self):
        (rule,) = FaultPlan.parse("read@7:persistent").rules
        assert not rule.transient

    def test_category_scope(self):
        (rule,) = FaultPlan.parse("write@2:run_write").rules
        assert rule.category == "run_write"
        assert rule.transient

    def test_category_and_persistence_combine(self):
        (rule,) = FaultPlan.parse("write@2:run_write:persistent").rules
        assert rule.category == "run_write"
        assert not rule.transient

    def test_torn_clause(self):
        (rule,) = FaultPlan.parse("torn@1").rules
        assert rule.op == "torn"

    def test_rate_and_seed(self):
        plan = FaultPlan.parse("rate=0.01;seed=42")
        assert plan.rate == 0.01
        assert plan.seed == 42
        assert plan.rules == ()

    def test_separators_and_blank_clauses(self):
        plan = FaultPlan.parse("read@1, write@2; ;torn@3")
        assert [r.op for r in plan.rules] == ["read", "write", "torn"]

    def test_describe_roundtrips(self):
        for text in (
            "read@5",
            "write@3*4:persistent",
            "read@2:run_read;torn@1",
            "write@9;rate=0.25;seed=7",
        ):
            plan = FaultPlan.parse(text)
            assert FaultPlan.parse(plan.describe()) == plan

    @pytest.mark.parametrize(
        "bad",
        [
            "flush@3",
            "read@",
            "read@0",
            "write@2*0",
            "rate=lots",
            "seed=pi",
            "read@1:a:b",
            "rate=1.0",
        ],
    )
    def test_bad_plans_raise_typed(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_rule_validation(self):
        with pytest.raises(FaultPlanError):
            FaultRule("erase", 1)
        with pytest.raises(FaultPlanError):
            FaultRule("read", 0)
        with pytest.raises(FaultPlanError):
            FaultRule("read", 1, count=0)

    def test_covers_window(self):
        rule = FaultRule("read", 3, count=2)
        assert [rule.covers(n) for n in (2, 3, 4, 5)] == [
            False,
            True,
            True,
            False,
        ]

    def test_covers_persistent_is_open_ended(self):
        rule = FaultRule("read", 3, transient=False)
        assert not rule.covers(2)
        assert rule.covers(3)
        assert rule.covers(1000)


class TestFaultInjector:
    def test_nth_read_faults_once(self):
        device, start = make_device()
        faulty = FaultInjector(device, FaultPlan.parse("read@2"))
        faulty.read_block(start, "s")
        with pytest.raises(DeviceFault) as info:
            faulty.read_block(start, "s")
        assert info.value.transient
        assert info.value.attempt == 2
        assert info.value.op == "read"
        # The failed attempt consumed index 2; attempt 3 succeeds.
        assert faulty.read_block(start, "s") == bytes([0]) * 8

    def test_failed_attempt_charges_nothing(self):
        device, start = make_device()
        faulty = FaultInjector(device, FaultPlan.parse("read@1;write@1"))
        before = device.stats.snapshot()
        with pytest.raises(DeviceFault):
            faulty.read_block(start, "s")
        with pytest.raises(DeviceFault):
            faulty.write_block(start, b"x", "s")
        after = device.stats.snapshot().minus(before)
        assert after.total_ios == 0

    def test_category_scoped_counter(self):
        device, start = make_device()
        faulty = FaultInjector(device, FaultPlan.parse("read@2:hot"))
        # Reads in other categories do not advance the scoped counter.
        faulty.read_block(start, "cold")
        faulty.read_block(start, "cold")
        faulty.read_block(start, "hot")
        with pytest.raises(DeviceFault) as info:
            faulty.read_block(start, "hot")
        assert info.value.category == "hot"
        assert info.value.attempt == 2

    def test_vectored_access_advances_by_block_count(self):
        device, start = make_device()
        faulty = FaultInjector(device, FaultPlan.parse("read@3"))
        with pytest.raises(DeviceFault) as info:
            faulty.read_blocks([start, start + 1, start + 2], "s")
        assert info.value.attempt == 3
        # All three indices were consumed: the next single read is
        # attempt 4 and succeeds.
        assert faulty.read_block(start, "s")

    def test_persistent_faults_every_attempt(self):
        device, start = make_device()
        faulty = FaultInjector(device, FaultPlan.parse("write@2:persistent"))
        faulty.write_block(start, b"a", "s")
        for _ in range(3):
            with pytest.raises(DeviceFault) as info:
                faulty.write_block(start, b"b", "s")
            assert not info.value.transient

    def test_torn_write_persists_prefix_uncounted(self):
        device, start = make_device()
        faulty = FaultInjector(device, FaultPlan.parse("torn@1"))
        ids = [start, start + 1, start + 2, start + 3]
        before = device.stats.snapshot()
        with pytest.raises(DeviceFault) as info:
            faulty.write_blocks(ids, [b"a", b"b", b"c", b"d"], "s")
        assert info.value.torn
        # Half the blocks were persisted raw - visible, but never charged.
        assert device.stats.snapshot().minus(before).total_ios == 0
        assert device._blocks[start] == b"a"
        assert device._blocks[start + 1] == b"b"
        assert device._blocks[start + 2] == bytes([2]) * 8
        # The retried write is charged once, in full, like any other.
        faulty.write_blocks(ids, [b"a", b"b", b"c", b"d"], "s")
        assert device.stats.total_writes - before.total_writes == 4

    def test_torn_counter_ignores_single_block_writes(self):
        device, start = make_device()
        faulty = FaultInjector(device, FaultPlan.parse("torn@1"))
        faulty.write_block(start, b"x", "s")
        faulty.write_blocks([start + 1], [b"y"], "s")
        # Only a 2+ block vectored write is a torn candidate.
        with pytest.raises(DeviceFault):
            faulty.write_blocks([start + 2, start + 3], [b"a", b"b"], "s")

    def test_rate_faults_are_seed_deterministic(self):
        def fault_pattern(seed):
            device, start = make_device()
            faulty = FaultInjector(
                device, FaultPlan(rate=0.3, seed=seed)
            )
            pattern = []
            for _ in range(40):
                try:
                    faulty.read_block(start, "s")
                    pattern.append(False)
                except DeviceFault:
                    pattern.append(True)
            return pattern

        assert fault_pattern(7) == fault_pattern(7)
        assert any(fault_pattern(7))
        assert fault_pattern(7) != fault_pattern(8)

    def test_fault_stats_tally(self):
        device, start = make_device()
        faulty = FaultInjector(
            device, FaultPlan.parse("read@1;write@1:persistent;torn@1")
        )
        for fn in (
            lambda: faulty.read_block(start, "s"),
            lambda: faulty.write_block(start, b"x", "s"),
            lambda: faulty.write_blocks(
                [start, start + 1], [b"a", b"b"], "s"
            ),
        ):
            with pytest.raises(DeviceFault):
                fn()
        stats = faulty.fault_stats
        assert stats.injected == 3
        assert stats.transient == 2
        assert stats.persistent == 1
        assert stats.torn == 1
        assert stats.by_op == {"read": 1, "write": 1, "torn": 1}

    def test_proxy_preserves_device_surface(self):
        device, start = make_device()
        faulty = FaultInjector(device, FaultPlan())
        assert faulty.block_size == device.block_size
        assert faulty.stats is device.stats
        assert faulty.bytes_to_blocks(300) == 2
        block = faulty.allocate(1)
        faulty.write_block(block, b"via-proxy", "s")
        assert device.read_block(block) == b"via-proxy"
        faulty.free_blocks([block])
        assert device.occupied_blocks == 32


class TestRetryPolicy:
    def test_exponential_delays(self):
        policy = RetryPolicy(backoff_seconds=0.01, multiplier=2.0)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(1) == pytest.approx(0.02)
        assert policy.delay(2) == pytest.approx(0.04)

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FaultPlanError):
            RetryPolicy(backoff_seconds=-0.5)


class TestRetryingDevice:
    def stack(self, plan, policy=None):
        device, start = make_device()
        faulty = FaultInjector(device, FaultPlan.parse(plan))
        return device, start, RetryingDevice(faulty, policy)

    def test_transient_fault_absorbed_and_charged_once(self):
        device, start, retrier = self.stack("read@1")
        before = device.stats.snapshot()
        assert retrier.read_block(start, "s") == bytes([0]) * 8
        after = device.stats.snapshot().minus(before)
        assert after.total_reads == 1
        assert retrier.retry_stats.retries == 1
        assert device.stats.penalty_seconds == pytest.approx(
            retrier.policy.delay(0)
        )

    def test_backoff_escalates_per_retry(self):
        policy = RetryPolicy(max_retries=3, backoff_seconds=0.01)
        device, start, retrier = self.stack("read@1*3", policy)
        retrier.read_block(start, "s")
        assert retrier.retry_stats.retries == 3
        assert retrier.retry_stats.penalty_seconds == pytest.approx(
            0.01 + 0.02 + 0.04
        )

    def test_exhausted_retries_reraise(self):
        policy = RetryPolicy(max_retries=2, backoff_seconds=0.01)
        device, start, retrier = self.stack("read@1*5", policy)
        with pytest.raises(DeviceFault):
            retrier.read_block(start, "s")
        assert retrier.retry_stats.exhausted == 1
        assert retrier.retry_stats.retries == 2
        # The failed access never charged a read.
        assert device.stats.total_reads == 0

    def test_persistent_fault_not_retried(self):
        device, start, retrier = self.stack("write@1:persistent")
        with pytest.raises(DeviceFault):
            retrier.write_block(start, b"x", "s")
        assert retrier.retry_stats.retries == 0
        assert device.stats.penalty_seconds == 0.0

    def test_penalty_is_simulated_clock_only(self):
        device, start, retrier = self.stack("read@1")
        retrier.read_block(start, "s")
        snapshot = device.stats.snapshot()
        # Backoff shows on the wall (elapsed) clock but never in the
        # counter-derived model time the trace diff compares.
        assert snapshot.elapsed_seconds() > snapshot.model_seconds()
        totals = snapshot.counter_totals()
        assert totals["penalty_seconds"] > 0
        assert totals["seconds"] == pytest.approx(snapshot.model_seconds())

    def test_vectored_paths_retry_too(self):
        device, start, retrier = self.stack("read@2;write@2")
        assert retrier.read_blocks([start, start + 1], "s") == [
            bytes([0]) * 8,
            bytes([1]) * 8,
        ]
        retrier.write_blocks([start, start + 1], [b"a", b"b"], "s")
        assert retrier.retry_stats.retries == 2
        assert device.read_block(start) == b"a"


class TestRecoveryHolds:
    def test_freed_blocks_restorable(self):
        device, start = make_device()
        device.push_hold()
        device.free_blocks([start])
        with pytest.raises(DeviceError):
            device.read_block(start)
        device.pop_hold(restore=True)
        assert device.read_block(start) == bytes([0]) * 8

    def test_commit_drops_for_good(self):
        device, start = make_device()
        device.push_hold()
        device.free_blocks([start])
        device.pop_hold(restore=False)
        with pytest.raises(DeviceError):
            device.read_block(start)

    def test_holds_nest(self):
        device, start = make_device()
        device.push_hold()
        device.free_blocks([start])
        device.push_hold()
        device.free_blocks([start + 1])
        # Inner commit: start+1 is gone for good...
        device.pop_hold(restore=False)
        # ...but the outer restore still brings start back.
        device.pop_hold(restore=True)
        assert device.read_block(start) == bytes([0]) * 8
        with pytest.raises(DeviceError):
            device.read_block(start + 1)

    def test_free_accounting_identical_under_hold(self):
        device, start = make_device()
        device.read_block(start, "s")
        device.push_hold()
        before = device.stats.snapshot()
        device.free_blocks([start])
        assert device.stats.snapshot().minus(before).total_ios == 0
        # The category forgot its last access exactly as without a hold:
        # the next read of the freed id starts a fresh (sequential) run.
        device.pop_hold(restore=True)
        assert device.occupied_blocks == 32

    def test_stash_block_restored(self):
        device, start = make_device()
        device.push_hold()
        device.free_blocks([start])
        # A dirty cached copy the device never saw is handed over for
        # safekeeping and wins over the stale freed contents.
        device.stash_block(start, b"dirty-cached")
        device.pop_hold(restore=True)
        assert device.read_block(start) == b"dirty-cached"

    def test_stash_without_hold_is_noop(self):
        device, start = make_device()
        device.stash_block(start, b"ignored")
        assert device.read_block(start) == bytes([0]) * 8

    def test_pop_without_hold_raises(self):
        device, _ = make_device()
        with pytest.raises(DeviceError):
            device.pop_hold(restore=True)

    def test_file_device_holds(self, tmp_path):
        device = FileBackedBlockDevice(
            str(tmp_path / "dev.bin"), block_size=256
        )
        start = device.allocate(4)
        for i in range(4):
            device.write_block(start + i, b"blk%d" % i, "setup")
        device.push_hold()
        device.free_blocks([start, start + 1])
        with pytest.raises(DeviceError):
            device.read_block(start)
        device.pop_hold(restore=True)
        assert device.read_block(start).startswith(b"blk0")
        assert device.read_block(start + 1).startswith(b"blk1")
        device.close()

    def test_file_device_raw_store(self, tmp_path):
        device = FileBackedBlockDevice(
            str(tmp_path / "dev.bin"), block_size=256
        )
        start = device.allocate(1)
        before = device.stats.snapshot()
        device.store_block_raw(start, b"torn-prefix")
        assert device.stats.snapshot().minus(before).total_ios == 0
        assert device.read_block(start).startswith(b"torn-prefix")
        device.close()


class TestRecoveryContext:
    def test_checkpoint_describe(self):
        assert Checkpoint("merge-pass-1", 3).describe() == "merge-pass-1#3"
        assert (
            Checkpoint("run-formation", 0, run_id=9).describe()
            == "run-formation#0 (run 9)"
        )

    def test_describe_last_fallback(self):
        recovery = RecoveryContext()
        assert recovery.describe_last() == "no completed checkpoint"
        recovery.checkpoint("run-formation", 0, run_id=1)
        recovery.checkpoint("merge-pass-1", 0, run_id=2)
        assert recovery.describe_last() == "merge-pass-1#0 (run 2)"

    def test_negative_max_restarts_rejected(self):
        with pytest.raises(FaultPlanError):
            RecoveryContext(max_restarts=-1)

    def test_attempt_restarts_on_transient_fault(self):
        recovery = RecoveryContext()
        calls = []

        def flaky():
            calls.append(None)
            if len(calls) == 1:
                raise DeviceFault("boom", transient=True)
            return "done"

        assert recovery.attempt("phase", 0, flaky) == "done"
        assert recovery.restarts == 1

    def test_attempt_gives_up_after_max_restarts(self):
        recovery = RecoveryContext(max_restarts=2)

        def always():
            raise DeviceFault("boom", transient=True)

        with pytest.raises(SortRecoveryError) as info:
            recovery.attempt("phase", 0, always)
        assert recovery.restarts == 2
        assert "unrecovered transient" in str(info.value)

    def test_persistent_fault_immediately_fatal(self):
        recovery = RecoveryContext()
        recovery.checkpoint("run-formation", 4, run_id=5)

        def always():
            raise DeviceFault("dead", transient=False)

        with pytest.raises(SortRecoveryError) as info:
            recovery.attempt("phase", 0, always)
        assert recovery.restarts == 0
        assert info.value.checkpoint == Checkpoint("run-formation", 4, 5)
        assert "run-formation#4 (run 5)" in str(info.value)

    def test_attempt_restores_held_inputs_for_restart(self):
        device, start = make_device()
        recovery = RecoveryContext()
        tries = []

        def unit():
            tries.append(None)
            # The unit drains and frees its input, then fails on try 1.
            data = device.read_block(start, "s")
            device.free_blocks([start])
            if len(tries) == 1:
                raise DeviceFault("late fault", transient=True)
            return data

        assert recovery.attempt("phase", 0, unit, device=device) == (
            bytes([0]) * 8
        )
        assert len(tries) == 2
        assert not device.holding
        # Success committed the hold: the input is gone for good now.
        with pytest.raises(DeviceError):
            device.read_block(start)

    def test_attempt_commits_hold_on_foreign_exception(self):
        device, start = make_device()
        recovery = RecoveryContext()

        def unit():
            device.free_blocks([start])
            raise ValueError("not a device fault")

        with pytest.raises(ValueError):
            recovery.attempt("phase", 0, unit, device=device)
        assert not device.holding
        with pytest.raises(DeviceError):
            device.read_block(start)


class TestRunWriterAbandon:
    def test_abandon_frees_partial_output(self):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        writer = store.create_writer()
        for i in range(20):
            writer.write_record(b"r%03d" % i * 8)
        occupied = device.occupied_blocks
        assert occupied > 0
        writer.abandon()
        assert device.occupied_blocks == 0
        with pytest.raises(RunError):
            writer.write_record(b"x")
        with pytest.raises(RunError):
            writer.finish()

    def test_abandon_after_finish_raises(self):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        writer = store.create_writer()
        writer.write_record(b"only")
        writer.finish()
        with pytest.raises(RunError):
            writer.abandon()


SPEC = SortSpec(default=ByAttribute("name"))


def small_events():
    return level_fanout_events([6, 6, 6], seed=3, pad_bytes=24)


def run_sort(algorithm, plan=None, retries=0, memory=16):
    """One sort on a fresh 512-byte-block device, optionally faulted."""
    base = BlockDevice(block_size=512)
    device, injector, retrier = build_faulty_device(
        base, plan, retries=retries
    )
    store = RunStore(device)
    document = Document.from_events(store, small_events())
    recovery = RecoveryContext() if plan is not None else None
    sorter = nexsort if algorithm == "nexsort" else external_merge_sort
    output, report = sorter(
        document, SPEC, memory_blocks=memory, recovery=recovery
    )
    return {
        "text": output.to_string(),
        "report": report,
        "totals": base.stats.snapshot().counter_totals(),
        "injector": injector,
        "retrier": retrier,
        "recovery": recovery,
    }


class TestEndToEndRecovery:
    def test_retried_nexsort_is_bit_identical(self):
        clean = run_sort("nexsort")
        faulted = run_sort(
            "nexsort", "read@7;write@9;rate=0.01;seed=3", retries=3
        )
        assert faulted["injector"].fault_stats.injected > 0
        assert faulted["recovery"].restarts == 0
        assert faulted["text"] == clean["text"]
        # Every model counter matches; the only difference is the backoff
        # penalty on the simulated clock.
        diffs = {
            key: (clean["totals"][key], value)
            for key, value in faulted["totals"].items()
            if value != clean["totals"][key]
        }
        assert set(diffs) == {"penalty_seconds"}
        assert faulted["totals"]["penalty_seconds"] > 0

    def test_unit_restart_reproduces_output(self):
        clean = run_sort("nexsort")
        faulted = run_sort("nexsort", "write@10:run_write")
        assert faulted["recovery"].restarts == 1
        assert faulted["text"] == clean["text"]
        # Restarted work is re-charged: strictly more I/O than clean.
        assert (
            faulted["totals"]["total_ios"] > clean["totals"]["total_ios"]
        )

    def test_merge_pass_restart_reproduces_output(self):
        clean = run_sort("merge", memory=5)
        for plan in ("read@5:merge_read", "read@20:merge_read"):
            faulted = run_sort("merge", plan, memory=5)
            assert faulted["recovery"].restarts == 1
            assert faulted["text"] == clean["text"]

    def test_persistent_fault_names_checkpoint(self):
        with pytest.raises(SortRecoveryError) as info:
            run_sort(
                "nexsort", "write@30:run_write:persistent", retries=2
            )
        assert "persistent device fault" in str(info.value)
        assert "last completed checkpoint: subtree-sort#" in str(info.value)
        assert info.value.checkpoint is not None
        assert info.value.checkpoint.run_id is not None

    def test_formation_fault_without_retries_names_checkpoint(self):
        # Run formation streams the input scan, so it is checkpointed but
        # not restartable: a fault escaping the retry layer is fatal and
        # must say how far the sort got.
        with pytest.raises(SortRecoveryError) as info:
            run_sort("merge", "write@40:run_write", memory=5)
        assert "last completed checkpoint: run-formation#" in str(info.value)

    def test_formation_fault_with_retries_recovers(self):
        clean = run_sort("merge", memory=5)
        faulted = run_sort("merge", "write@40:run_write", retries=2, memory=5)
        assert faulted["text"] == clean["text"]
        diffs = {
            key
            for key, value in faulted["totals"].items()
            if value != clean["totals"][key]
        }
        assert diffs == {"penalty_seconds"}

    def test_unrecoverable_phase_fault_is_typed(self):
        # This config's early run_read attempts land in the output
        # assembly, which has no restartable unit: with no retries the
        # sort must fail with the typed recovery error naming how far it
        # got, not a bare DeviceFault.
        with pytest.raises(SortRecoveryError) as info:
            run_sort("nexsort", "read@5:run_read")
        assert "last completed checkpoint: subtree-sort#" in str(info.value)

    def test_load_phase_fault_raises_before_sorting(self):
        # Faults during the document load happen before any sorter (and
        # any recovery context) exists, so the API surfaces the raw
        # device fault; the CLI converts it for the user.
        with pytest.raises(DeviceFault) as info:
            run_sort("nexsort", "write@2")
        assert info.value.category == "load"

    def test_fault_free_run_unchanged_by_recovery_plumbing(self):
        # Threading a recovery context through a fault-free sort changes
        # nothing: same output, same counters, no checkpoint overhead in
        # the model.
        clean = run_sort("nexsort")
        plumbed = run_sort("nexsort", FaultPlan(), retries=0)
        assert plumbed["text"] == clean["text"]
        assert plumbed["totals"] == clean["totals"]
        assert len(plumbed["recovery"].checkpoints) > 0


class TestBuildFaultyDevice:
    def test_none_plan_returns_device_unchanged(self):
        device, _ = make_device()
        top, injector, retrier = build_faulty_device(device, None)
        assert top is device
        assert injector is None
        assert retrier is None

    def test_plan_without_retries_is_injector_only(self):
        device, _ = make_device()
        top, injector, retrier = build_faulty_device(device, "read@1")
        assert top is injector
        assert retrier is None
        assert injector.plan.rules == (FaultRule("read", 1),)

    def test_retries_stack_retrier_on_injector(self):
        device, _ = make_device()
        top, injector, retrier = build_faulty_device(
            device, "read@1", retries=2
        )
        assert top is retrier
        assert retrier.device is injector
        assert injector.device is device
        assert retrier.policy.max_retries == 2
