"""Tests for sort-based duplicate elimination (NF2 related work)."""

from repro.baselines import sort_element
from repro.core import nexsort
from repro.io import BlockDevice, RunStore
from repro.merge import deduplicate
from repro.xml import Document, Element

from .conftest import random_tree


def fresh_doc(tree):
    device = BlockDevice(block_size=256)
    store = RunStore(device)
    return Document.from_element(store, tree)


class TestDeduplication:
    def test_adjacent_identical_siblings_removed(self, spec):
        tree = Element.parse(
            '<r name="r"><a name="1">x</a><a name="1">x</a>'
            '<a name="2"/></r>'
        )
        doc = fresh_doc(tree)
        result, report = deduplicate(doc, spec)
        names = [c.attrs["name"] for c in result.to_element().children]
        assert names == ["1", "2"]
        assert report.duplicate_subtrees_removed == 1
        assert report.elements_removed == 1

    def test_same_key_different_content_kept(self, spec):
        tree = Element.parse(
            '<r name="r"><a name="1">x</a><a name="1">y</a></r>'
        )
        doc = fresh_doc(tree)
        result, report = deduplicate(doc, spec)
        assert len(result.to_element().children) == 2
        assert report.duplicate_subtrees_removed == 0

    def test_deep_duplicates_collapse_bottom_up(self, spec):
        """Parents that differ only by internal duplicates also merge."""
        tree = Element.parse(
            '<r name="r">'
            '<a name="1"><b name="x"/><b name="x"/></a>'
            '<a name="1"><b name="x"/></a>'
            "</r>"
        )
        doc = fresh_doc(tree)
        result, report = deduplicate(doc, spec)
        out = result.to_element()
        assert len(out.children) == 1
        assert len(out.children[0].children) == 1
        # one inner <b> plus one whole <a> subtree removed
        assert report.duplicate_subtrees_removed == 2

    def test_attribute_order_is_insignificant(self, spec):
        tree = Element.parse(
            '<r name="r"><a name="1" x="1" y="2"/>'
            '<a y="2" x="1" name="1"/></r>'
        )
        doc = fresh_doc(tree)
        result, _report = deduplicate(doc, spec)
        assert len(result.to_element().children) == 1

    def test_nonadjacent_duplicates_need_sorting_first(self, spec):
        tree = Element.parse(
            '<r name="r"><a name="1"/><a name="2"/><a name="1"/></r>'
        )
        unsorted_result, unsorted_report = deduplicate(
            fresh_doc(tree), spec
        )
        assert len(unsorted_result.to_element().children) == 3
        assert unsorted_report.duplicate_subtrees_removed == 0

        doc = fresh_doc(tree)
        sorted_doc, _ = nexsort(doc, spec, memory_blocks=8)
        deduped, report = deduplicate(sorted_doc, spec)
        assert len(deduped.to_element().children) == 2
        assert report.duplicate_subtrees_removed == 1

    def test_no_duplicates_is_identity(self, spec):
        tree = sort_element(random_tree(4, depth=4, max_fanout=4), spec)
        doc = fresh_doc(tree)
        result, report = deduplicate(doc, spec)
        assert result.to_element() == tree
        assert report.duplicate_subtrees_removed == 0

    def test_sort_then_dedup_is_idempotent(self, spec):
        tree = Element.parse(
            '<r name="r"><a name="2"/><a name="1"/><a name="2"/></r>'
        )
        doc = fresh_doc(tree)
        sorted_doc, _ = nexsort(doc, spec, memory_blocks=8)
        once, _ = deduplicate(sorted_doc, spec)
        twice, report = deduplicate(once, spec)
        assert once.to_element() == twice.to_element()
        assert report.duplicate_subtrees_removed == 0

    def test_text_participates_in_identity(self, spec):
        tree = Element.parse(
            '<r name="r"><a name="1">same</a><a name="1">same</a>'
            '<a name="1">different</a></r>'
        )
        result, _report = deduplicate(fresh_doc(tree), spec)
        assert len(result.to_element().children) == 2

    def test_io_counted(self, spec):
        tree = random_tree(6, depth=4, max_fanout=4)
        doc = fresh_doc(tree)
        _result, report = deduplicate(doc, spec)
        assert report.total_ios >= 2 * doc.block_count - 2
