"""The planner against the recorded benchmark grids (ISSUE 9).

The acceptance criterion: on every recorded ``BENCH_*.json`` sweep, the
configuration the planner ranks first must measure within 5% of the
empirically best row of that sweep.  The profiles are rebuilt
analytically (``DocumentProfile.from_fanouts``) from each benchmark's
generator shape, the real encoded element size taken from the recorded
row itself - exactly the information ``--plan auto`` has before running.

Unit tests below pin the enumeration/pinning/tie-break contract.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    DocumentProfile,
    Plan,
    PlanConfig,
    Planner,
    profile_document,
)
from repro.errors import ReproError
from repro.generators import level_fanout_events
from repro.io import BlockDevice, RunStore
from repro.merge import MergeOptions
from repro.xml import Document

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"

#: The recorded fig5/fig6 small-block workloads all use seed=5/pad=24
#: generators whose measured encoded element size is ~62 bytes.
SMALL_BLOCK_ELEMENT_BYTES = 62.05

TOLERANCE = 1.05


def bench(name: str) -> dict:
    path = BENCH_DIR / f"BENCH_{name}.json"
    if not path.exists():
        pytest.skip(f"{path.name} not recorded")
    return json.loads(path.read_text())


def assert_pick_near_optimum(name, planner, configs, measured):
    """The planner's first-ranked config measures within 5% of the best."""
    ranked = planner.rank(list(configs.values()))
    inverse = {cfg: key for key, cfg in configs.items()}
    pick = inverse[ranked[0][0]]
    best = min(measured.values())
    ratio = measured[pick] / best
    assert ratio <= TOLERANCE, (
        f"{name}: planner picked {pick} measuring {measured[pick]:.4f}, "
        f"{ratio:.3f}x the best {best:.4f}"
    )


class TestBenchRegression:
    """Planner pick vs. empirical optimum on every recorded sweep."""

    def test_bufferpool_cache_split(self):
        data = bench("bufferpool")
        profile = DocumentProfile.from_fanouts(
            [11, 11, 11, 5], block_size=512,
            element_bytes=SMALL_BLOCK_ELEMENT_BYTES,
        )
        planner = Planner(profile, memory_blocks=48, block_size=512)
        configs, measured = {}, {}
        for row in data["rows"]:
            key = (row["memory_blocks"], row["cache_blocks"])
            configs[key] = PlanConfig(
                algorithm="nexsort",
                memory_blocks=row["memory_blocks"],
                cache_blocks=row["cache_blocks"],
            )
            measured[key] = row["simulated_seconds"]
        assert_pick_near_optimum("bufferpool", planner, configs, measured)

    @pytest.mark.parametrize(
        "workload,shape",
        [("fig5", [11, 11, 11, 5]), ("fig6", [12, 85, 24])],
    )
    def test_runformation_grid(self, workload, shape):
        data = bench("runformation")
        profile = DocumentProfile.from_fanouts(
            shape, block_size=512,
            element_bytes=SMALL_BLOCK_ELEMENT_BYTES,
        )
        planner = Planner(profile, memory_blocks=24, block_size=512)
        configs, measured = {}, {}
        for row in data["rows"]:
            if row["workload"] != workload:
                continue
            key = (
                row["run_formation"],
                row["merge_kernel"],
                row["embedded_keys"],
            )
            configs[key] = PlanConfig(
                algorithm="merge_sort",
                memory_blocks=24,
                run_formation=row["run_formation"],
                merge_kernel=row["merge_kernel"],
                embedded_keys=row["embedded_keys"],
            )
            measured[key] = row["simulated_seconds"]
        assert_pick_near_optimum(
            f"runformation/{workload}", planner, configs, measured
        )

    def test_compress_grid(self):
        # ISSUE 10: the planner's compress knob against the recorded
        # codec x memory sweep - its pick per memory grant must measure
        # within tolerance of that grant's best codec row.
        data = bench("compress")
        profile = DocumentProfile.from_fanouts(
            [11, 11, 11, 5], block_size=512,
            element_bytes=SMALL_BLOCK_ELEMENT_BYTES,
        )
        for memory in sorted(
            {row["memory_blocks"] for row in data["codec_sweep"]}
        ):
            planner = Planner(
                profile, memory_blocks=memory, block_size=512
            )
            configs, measured = {}, {}
            for row in data["codec_sweep"]:
                if row["memory_blocks"] != memory:
                    continue
                codec = (
                    None if row["codec"] == "off" else row["codec"]
                )
                configs[row["codec"]] = PlanConfig(
                    algorithm="merge_sort",
                    memory_blocks=memory,
                    compress=codec,
                )
                measured[row["codec"]] = row["simulated_seconds"]
            assert_pick_near_optimum(
                f"compress/M={memory}", planner, configs, measured
            )

    def test_compress_chosen_iff_model_predicts_win(self):
        # The crossover contract: at small blocks the constant per-block
        # transfer charge dwarfs the per-byte codec CPU, so compression
        # wins; at paper-scale 64 KB blocks the CPU dominates and the
        # planner must leave compression off.
        for block_size, expect_on in ((512, True), (65536, False)):
            profile = DocumentProfile.from_fanouts(
                [11, 11, 11, 5], block_size=block_size,
                element_bytes=SMALL_BLOCK_ELEMENT_BYTES,
            )
            planner = Planner(
                profile, memory_blocks=24, block_size=block_size
            )
            plan = planner.choose()
            chosen = plan.config.compress is not None
            assert chosen == expect_on, (
                f"block_size={block_size}: compress="
                f"{plan.config.compress!r}, expected "
                f"{'on' if expect_on else 'off'}"
            )

    def test_kernel_algorithm_choice(self):
        data = bench("kernel")
        rows = [r for r in data["rows"] if r["workload"] == "fig5-1e5"]
        element_bytes = 65536 * 96 / rows[0]["element_count"]
        profile = DocumentProfile.from_fanouts(
            [11, 11, 11, 75], block_size=65536,
            element_bytes=element_bytes,
        )
        planner = Planner(profile, memory_blocks=48, block_size=65536)
        configs, measured = {}, {}
        for row in rows:
            key = (row["algorithm"], row["kernel"])
            configs[key] = PlanConfig(
                algorithm=row["algorithm"],
                memory_blocks=48,
                kernel=row["kernel"],
            )
            measured[key] = row["simulated_seconds"]
        assert_pick_near_optimum("kernel", planner, configs, measured)

    def test_striping_disk_sweep(self):
        # The striping objective is busiest-disk time: total I/Os rise
        # with D (stripe bookkeeping) while elapsed time falls, so the
        # measured column is disk_seconds, matching the planner's.
        data = bench("striping")
        profile = DocumentProfile.from_fanouts(
            [11, 11, 11, 5], block_size=512,
            element_bytes=SMALL_BLOCK_ELEMENT_BYTES,
        )
        planner = Planner(
            profile, memory_blocks=24, block_size=512, disks=8
        )
        configs, measured = {}, {}
        for row in data["disk_sweep"]:
            configs[row["disks"]] = PlanConfig(
                algorithm="nexsort",
                memory_blocks=24,
                disks=row["disks"],
                prefetch_depth=row["prefetch_depth"],
            )
            measured[row["disks"]] = row["disk_seconds"]
        assert_pick_near_optimum("striping", planner, configs, measured)

    def test_paper_scale_fast_tier(self):
        data = bench("paper_scale")
        rows = [r for r in data["rows"] if r["figure"] == "fig5-fast"]
        if not rows:
            pytest.skip("fast tier not recorded")
        element_bytes = (
            65536 * rows[0]["input_blocks"] / rows[0]["element_count"]
        )
        profile = DocumentProfile.from_fanouts(
            rows[0]["shape"], block_size=65536,
            element_bytes=element_bytes,
        )
        planner = Planner(profile, memory_blocks=48, block_size=65536)
        configs, measured = {}, {}
        for row in rows:
            key = row["algorithm"]
            if key in measured:
                measured[key] = min(
                    measured[key], row["simulated_seconds"]
                )
                continue
            configs[key] = PlanConfig(
                algorithm=row["algorithm"], memory_blocks=48
            )
            measured[key] = row["simulated_seconds"]
        assert_pick_near_optimum(
            "paper-scale-fast", planner, configs, measured
        )


def make_profile(shape, block_size=512):
    device = BlockDevice(block_size=block_size)
    store = RunStore(device)
    document = Document.from_events(
        store, level_fanout_events(shape, seed=5, pad_bytes=24)
    )
    return profile_document(document)


class TestPlannerContract:
    def test_choose_returns_cheapest(self):
        profile = make_profile([4, 4, 4])
        planner = Planner(profile, memory_blocks=24, block_size=512)
        plan = planner.choose()
        assert isinstance(plan, Plan)
        costs = [cost.total_seconds for _cfg, cost in plan.ranked]
        assert costs == sorted(costs)
        assert plan.cost.total_seconds == costs[0]
        assert plan.considered >= len(plan.ranked)
        assert plan.rationale

    def test_fixed_pins_are_honored(self):
        profile = make_profile([4, 4, 4])
        planner = Planner(profile, memory_blocks=24, block_size=512)
        plan = planner.choose(fixed={
            "algorithm": "merge_sort",
            "run_formation": "replacement-selection",
            "cache_blocks": 2,
        })
        assert plan.config.algorithm == "merge_sort"
        assert plan.config.run_formation == "replacement-selection"
        assert plan.config.cache_blocks == 2

    def test_enumeration_skips_infeasible_cache(self):
        profile = make_profile([4, 4, 4])
        planner = Planner(profile, memory_blocks=8, block_size=512)
        for config in planner.enumerate_configs():
            assert (
                config.working_blocks
                >= planner._floor(config.algorithm)
            )

    def test_no_feasible_plan_raises(self):
        profile = make_profile([4, 4, 4])
        planner = Planner(profile, memory_blocks=6, block_size=512)
        with pytest.raises(ReproError):
            planner.enumerate_configs(
                fixed={"cache_blocks": 5, "algorithm": "nexsort"}
            )

    def test_choice_is_deterministic(self):
        profile = make_profile([6, 6, 6])
        planner = Planner(profile, memory_blocks=24, block_size=512)
        first = planner.choose()
        second = planner.choose()
        assert first.config == second.config
        assert first.cost == second.cost

    def test_merge_options_round_trip(self):
        config = PlanConfig(
            run_formation="replacement-selection",
            merge_kernel="loser-tree",
            embedded_keys=True,
            kernel="columnar",
        )
        assert config.merge_options() == MergeOptions(
            run_formation="replacement-selection",
            merge_kernel="loser-tree",
            embedded_keys=True,
            kernel="columnar",
        )

    def test_validate_rejects_bad_configs(self):
        for bad in (
            PlanConfig(algorithm="quicksort"),
            PlanConfig(run_formation="bogus"),
            PlanConfig(merge_kernel="bogus"),
            PlanConfig(kernel="bogus"),
            PlanConfig(memory_blocks=4, cache_blocks=3),
            PlanConfig(threshold_blocks=0),
            PlanConfig(disks=0),
            PlanConfig(prefetch_depth=-1),
        ):
            with pytest.raises(ReproError):
                bad.validate()

    def test_flat_document_prefers_merge_sort(self):
        profile = DocumentProfile.from_fanouts(
            [2999], block_size=512, element_bytes=62.05
        )
        planner = Planner(profile, memory_blocks=24, block_size=512)
        plan = planner.choose(
            fixed={"flat_optimization": False}
        )
        assert plan.config.algorithm == "merge_sort"

    def test_hierarchical_document_prefers_nexsort(self):
        profile = DocumentProfile.from_fanouts(
            [11, 11, 11, 75], block_size=65536,
            element_bytes=62.13,
        )
        planner = Planner(profile, memory_blocks=48, block_size=65536)
        plan = planner.choose()
        assert plan.config.algorithm == "nexsort"

    def test_describe_mentions_the_choice(self):
        profile = make_profile([4, 4, 4])
        planner = Planner(profile, memory_blocks=24, block_size=512)
        plan = planner.choose()
        text = plan.describe()
        assert plan.config.algorithm in text
        assert "predicted" in text

    def test_depth_matches_merge_depth_oracle(self):
        from repro.analysis import iterated_merge_depth

        profile = DocumentProfile.from_fanouts(
            [144, 144, 143], block_size=65536, element_bytes=63.0
        )
        planner = Planner(profile, memory_blocks=64, block_size=65536)
        config = PlanConfig(algorithm="merge_sort", memory_blocks=64)
        cost = planner.cost(config)
        assert cost.merge_depth == iterated_merge_depth(
            cost.initial_runs, cost.fan_in
        )
