"""Larger-scale validation, opt-in via REPRO_SLOW=1.

The regular suite keeps documents small for speed; these tests push one
of each major pipeline through ~100k elements to catch anything that only
breaks at depth (allocation, paging, run trees, merges at scale).
"""

import os

import pytest

from repro.baselines import external_merge_sort, is_fully_sorted
from repro.core import nexsort
from repro.generators import level_fanout_events
from repro.io import BlockDevice, RunStore
from repro.keys import ByAttribute, SortSpec
from repro.xml import Document

slow = pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW"),
    reason="set REPRO_SLOW=1 to run the large-scale validation",
)

SPEC = SortSpec(default=ByAttribute("name"))


def big_document(store):
    # [24, 24, 13, 13]: ~100k elements, height 5, all-internal sorts.
    return Document.from_events(
        store, level_fanout_events([24, 24, 13, 13], seed=77, pad_bytes=24)
    )


@slow
def test_nexsort_at_scale():
    device = BlockDevice(block_size=4096)
    store = RunStore(device)
    document = big_document(store)
    assert document.element_count > 95_000
    result, report = nexsort(document, SPEC, memory_blocks=48)
    assert report.sum_si == report.element_count - 1 + report.x
    assert is_fully_sorted(result.to_element(), SPEC)


@slow
def test_sorters_agree_at_scale():
    device = BlockDevice(block_size=4096)
    store = RunStore(device)
    document = big_document(store)
    nexsort_result, _ = nexsort(document, SPEC, memory_blocks=48)
    merge_result, _ = external_merge_sort(document, SPEC, memory_blocks=48)
    assert (
        nexsort_result.to_element().canonical()
        == merge_result.to_element().canonical()
    )
