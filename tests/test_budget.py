"""Unit tests for the internal-memory budget."""

import pytest

from repro.errors import MemoryBudgetExceeded
from repro.io import MemoryBudget


class TestReservations:
    def test_reserve_and_release(self):
        budget = MemoryBudget(10)
        reservation = budget.reserve(4, "stack")
        assert budget.reserved_blocks == 4
        assert budget.available_blocks == 6
        reservation.release()
        assert budget.available_blocks == 10

    def test_release_twice_is_noop(self):
        budget = MemoryBudget(10)
        reservation = budget.reserve(4)
        reservation.release()
        reservation.release()
        assert budget.available_blocks == 10

    def test_over_reserve_raises(self):
        budget = MemoryBudget(4)
        budget.reserve(3)
        with pytest.raises(MemoryBudgetExceeded):
            budget.reserve(2)

    def test_error_names_the_owner(self):
        budget = MemoryBudget(4)
        budget.reserve(4, "data-stack")
        with pytest.raises(MemoryBudgetExceeded, match="data-stack"):
            budget.reserve(1, "sorter")

    def test_reserve_rest_takes_everything(self):
        budget = MemoryBudget(8)
        budget.reserve(3, "fixed")
        rest = budget.reserve_rest("sorter")
        assert rest.blocks == 5
        assert budget.available_blocks == 0

    def test_negative_reserve_rejected(self):
        budget = MemoryBudget(8)
        with pytest.raises(MemoryBudgetExceeded):
            budget.reserve(-1)

    def test_zero_reserve_allowed(self):
        budget = MemoryBudget(8)
        reservation = budget.reserve(0, "placeholder")
        assert reservation.blocks == 0
        assert budget.available_blocks == 8

    def test_context_manager_releases(self):
        budget = MemoryBudget(8)
        with budget.reserve(5, "scoped"):
            assert budget.available_blocks == 3
        assert budget.available_blocks == 8

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(MemoryBudgetExceeded):
            MemoryBudget(0)

    def test_owner_accounting_across_multiple_reservations(self):
        budget = MemoryBudget(10)
        first = budget.reserve(2, "stack")
        second = budget.reserve(3, "stack")
        first.release()
        assert budget.reserved_blocks == 3
        second.release()
        assert budget.reserved_blocks == 0
