"""Tests for the LRU buffer pool and its end-to-end fidelity guarantees."""

import pytest

from repro.errors import DeviceError, MemoryBudgetExceeded
from repro.io import BlockDevice, BufferPool, MemoryBudget, RunStore
from repro.bench.harness import run_merge_sort, run_nexsort
from repro.core import nexsort
from repro.generators import level_fanout_events
from repro.keys import ByAttribute, SortSpec
from repro.xml.document import Document


def make_device(nblocks=32, block_size=256):
    device = BlockDevice(block_size=block_size)
    start = device.allocate(nblocks)
    for i in range(nblocks):
        device.write_block(start + i, bytes([i]) * 8, "setup")
    return device, start


class TestCaching:
    def test_hit_costs_no_device_io(self):
        device, start = make_device()
        pool = BufferPool(device, 4)
        pool.read_block(start, "s")
        before = device.stats.total_ios
        assert pool.read_block(start, "s") == bytes([0]) * 8
        assert device.stats.total_ios == before
        assert device.stats.cache_hits == 1
        assert device.stats.cache_misses == 1

    def test_lru_eviction_order(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        pool.read_block(start, "s")
        pool.read_block(start + 1, "s")
        # Touch block 0 so block 1 becomes least recently used.
        pool.read_block(start, "s")
        pool.read_block(start + 2, "s")  # evicts start+1
        assert pool.is_cached(start)
        assert not pool.is_cached(start + 1)
        assert pool.is_cached(start + 2)
        assert device.stats.cache_evictions == 1

    def test_capacity_zero_is_pure_passthrough(self):
        device, start = make_device()
        pool = BufferPool(device, 0)
        baseline = BlockDevice(block_size=256)
        b_start = baseline.allocate(4)
        for i in range(4):
            baseline.write_block(b_start + i, bytes([i]) * 8, "setup")
        for d, s in ((pool, start), (baseline, b_start)):
            d.read_block(s, "s")
            d.read_block(s, "s")
            d.write_block(s + 1, b"x", "s")
        assert device.stats.cache_hits == 0
        assert device.stats.cache_misses == 0
        assert device.stats.cache_evictions == 0
        assert (
            device.stats.by_category["s"].reads
            == baseline.stats.by_category["s"].reads
        )
        assert (
            device.stats.by_category["s"].writes
            == baseline.stats.by_category["s"].writes
        )

    def test_vectored_read_mixes_hits_and_misses(self):
        device, start = make_device()
        pool = BufferPool(device, 8)
        pool.read_block(start + 1, "s")
        before = device.stats.by_category["s"].reads
        out = pool.read_blocks([start, start + 1, start + 2], "s")
        assert out == [bytes([i]) * 8 for i in range(3)]
        # Only the two misses touched the device.
        assert device.stats.by_category["s"].reads == before + 2
        assert device.stats.by_category["s"].cache_hits == 1
        assert device.stats.by_category["s"].cache_misses == 3

    def test_stats_are_per_category(self):
        device, start = make_device()
        pool = BufferPool(device, 4)
        pool.read_block(start, "alpha")
        pool.read_block(start, "beta")
        assert device.stats.by_category["alpha"].cache_misses == 1
        assert device.stats.by_category["beta"].cache_hits == 1

    def test_readahead_default_scales_with_capacity(self):
        device, _ = make_device()
        assert BufferPool(device, 16).readahead == 8
        assert BufferPool(device, 8).readahead == 4
        assert BufferPool(device, 2).readahead == 1
        assert BufferPool(device, 0).readahead == 0
        assert BufferPool(device, 16, readahead=3).readahead == 3

    def test_negative_capacity_rejected(self):
        device, _ = make_device()
        with pytest.raises(DeviceError):
            BufferPool(device, -1)


class TestWriteBack:
    def test_write_is_deferred_until_eviction(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        before = device.stats.total_writes
        pool.write_block(start, b"new", "s")
        assert device.stats.total_writes == before
        assert pool.dirty_blocks == 1
        # Fill the pool past capacity: the dirty block is written back.
        pool.read_block(start + 1, "s")
        pool.read_block(start + 2, "s")
        assert device.stats.total_writes == before + 1
        assert device.read_block(start) == b"new"

    def test_read_after_write_sees_cached_data(self):
        device, start = make_device()
        pool = BufferPool(device, 4)
        pool.write_block(start, b"fresh", "s")
        assert pool.read_block(start, "s") == b"fresh"
        # The device copy is still stale: write-back, not write-through.
        assert device._blocks[start] != b"fresh"

    def test_flush_writes_dirty_blocks_in_order(self):
        device, start = make_device()
        pool = BufferPool(device, 4)
        # Dirty out of order; flush must write back in block-id order so
        # the device sees a sequential stream.
        pool.write_block(start + 2, b"c", "s")
        pool.write_block(start, b"a", "s")
        pool.write_block(start + 1, b"b", "s")
        writes_before = device.stats.by_category["s"].writes
        pool.flush()
        counters = device.stats.by_category["s"]
        assert counters.writes == writes_before + 3
        assert device.read_block(start) == b"a"
        assert device.read_block(start + 1) == b"b"
        assert device.read_block(start + 2) == b"c"
        # Flushing again is free: nothing is dirty any more.
        pool.flush()
        assert device.stats.by_category["s"].writes == writes_before + 3

    def test_flush_writes_under_original_stream(self):
        device, start = make_device()
        pool = BufferPool(device, 8)
        # Interleave two streams writing their own sequential extents.
        pool.write_block(start, b"a0", "s", stream="w1")
        pool.write_block(start + 4, b"b0", "s", stream="w2")
        pool.write_block(start + 1, b"a1", "s", stream="w1")
        pool.write_block(start + 5, b"b1", "s", stream="w2")
        pool.flush()
        # Each stream's flush is judged against its own last access, so
        # all four writes land sequential - exactly as they would have
        # unpooled.  Before the fix the stream was dropped on the cached
        # path and the flush interleaved both extents into one stream.
        baseline = BlockDevice(block_size=256)
        b_start = baseline.allocate(8)
        baseline.write_block(b_start, b"a0", "s", stream="w1")
        baseline.write_block(b_start + 4, b"b0", "s", stream="w2")
        baseline.write_block(b_start + 1, b"a1", "s", stream="w1")
        baseline.write_block(b_start + 5, b"b1", "s", stream="w2")
        assert (
            device.stats.by_category["s"].seq_writes
            == baseline.stats.by_category["s"].seq_writes
        )

    def test_eviction_writes_under_original_stream(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        pool.write_block(start + 8, b"x", "s", stream="w1")
        pool.write_block(start + 9, b"y", "s", stream="w1")
        # Unrelated traffic under the bare category moves its cursor.
        device.write_block(start, b"z", "s")
        # Evict both dirty blocks: their write-backs must be judged under
        # stream w1 (sequential), not the category cursor at start.
        seq_before = device.stats.by_category["s"].seq_writes
        pool.read_block(start + 2, "s")
        pool.read_block(start + 3, "s")
        assert device.stats.by_category["s"].seq_writes == seq_before + 2

    def test_vectored_write_threads_stream(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        pool.read_block(start, "s")
        assert pool.pin(start)
        pool.read_block(start + 1, "s")
        assert pool.pin(start + 1)
        # Fully pinned pool: write_blocks falls through block by block,
        # and the stream must survive the trip.
        pool.write_blocks(
            [start + 4, start + 5], [b"a", b"b"], "s", stream="w"
        )
        assert device.stats.by_category["s"].seq_writes >= 2

    def test_freed_dirty_block_never_written(self):
        device, start = make_device()
        pool = BufferPool(device, 4)
        before = device.stats.total_writes
        pool.write_block(start, b"doomed", "s")
        pool.free_blocks([start])
        pool.flush()
        assert device.stats.total_writes == before
        with pytest.raises(DeviceError):
            device.read_block(start)

    def test_close_flushes_and_clears(self):
        device, start = make_device()
        pool = BufferPool(device, 4)
        pool.write_block(start, b"kept", "s")
        pool.close()
        assert device.read_block(start) == b"kept"
        assert pool.cached_blocks == 0
        pool.close()  # idempotent

    def test_context_manager_flushes(self):
        device, start = make_device()
        with BufferPool(device, 4) as pool:
            pool.write_block(start, b"ctx", "s")
        assert device.read_block(start) == b"ctx"

    def test_oversized_write_rejected(self):
        device, start = make_device()
        pool = BufferPool(device, 4)
        with pytest.raises(DeviceError):
            pool.write_block(start, b"x" * 257, "s")

    def test_write_of_unallocated_block_rejected(self):
        device, _ = make_device(nblocks=4)
        pool = BufferPool(device, 4)
        with pytest.raises(DeviceError):
            pool.write_block(9999, b"x", "s")


class TestPinning:
    def test_pinned_block_survives_eviction_pressure(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        pool.read_block(start, "s")
        assert pool.pin(start)
        for i in range(1, 6):
            pool.read_block(start + i, "s")
        assert pool.is_cached(start)
        assert pool.pinned_blocks == 1
        pool.unpin(start)
        pool.read_block(start + 6, "s")
        pool.read_block(start + 7, "s")
        assert not pool.is_cached(start)

    def test_pin_fails_for_non_resident_block(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        assert not pool.pin(start)

    def test_pinning_every_entry_succeeds(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        pool.read_block(start, "s")
        pool.read_block(start + 1, "s")
        assert pool.pin(start)
        # Pinning the last unpinned entry is allowed; the pool degrades
        # to pass-through rather than refusing the pin.
        assert pool.pin(start + 1)
        assert pool.pinned_blocks == 2

    def test_pins_nest(self):
        device, start = make_device()
        pool = BufferPool(device, 4)
        pool.read_block(start, "s")
        assert pool.pin(start)
        assert pool.pin(start)
        pool.unpin(start)
        assert pool.pinned_blocks == 1
        pool.unpin(start)
        assert pool.pinned_blocks == 0

    def test_capacity_one_pool_can_pin(self):
        device, start = make_device()
        pool = BufferPool(device, 1)
        pool.read_block(start, "s")
        assert pool.pin(start)
        assert pool.is_cached(start)
        # The pinned block stays resident and readable as a hit.
        before = device.stats.total_reads
        pool.read_block(start, "s")
        assert device.stats.total_reads == before

    def test_all_pinned_write_falls_through(self):
        device, start = make_device()
        pool = BufferPool(device, 1)
        pool.read_block(start, "s")
        assert pool.pin(start)
        # Nothing evictable: the new write goes straight to the device.
        before = device.stats.total_writes
        pool.write_block(start + 1, b"thru", "s")
        assert device.stats.total_writes == before + 1
        assert device.read_block(start + 1).startswith(b"thru")
        assert not pool.is_cached(start + 1)

    def test_all_pinned_write_through_keeps_stream(self):
        device, start = make_device()
        pool = BufferPool(device, 1)
        pool.read_block(start, "s")
        assert pool.pin(start)
        # Sequential writes under one stream stay sequential even on the
        # write-through path.
        pool.write_block(start + 1, b"a", "s", stream="w")
        pool.write_block(start + 2, b"b", "s", stream="w")
        assert device.stats.by_category["s"].seq_writes == 2

    def test_unpin_of_non_resident_block_raises(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        with pytest.raises(DeviceError):
            pool.unpin(start)

    def test_unpin_of_unpinned_block_raises(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        pool.read_block(start, "s")
        with pytest.raises(DeviceError):
            pool.unpin(start)

    def test_free_of_pinned_block_raises(self):
        device, start = make_device()
        pool = BufferPool(device, 2)
        pool.read_block(start, "s")
        assert pool.pin(start)
        with pytest.raises(DeviceError):
            pool.free_blocks([start])
        # The pin (and the entry) survive the refused free.
        assert pool.is_cached(start)
        pool.unpin(start)
        pool.free_blocks([start])
        assert not pool.is_cached(start)


class TestBudgetCharging:
    def test_capacity_reserved_from_budget(self):
        device, _ = make_device()
        budget = MemoryBudget(10)
        pool = BufferPool(device, 4, budget=budget)
        assert budget.available_blocks == 6
        pool.close()
        assert budget.available_blocks == 10

    def test_over_provisioning_raises(self):
        device, _ = make_device()
        budget = MemoryBudget(10)
        budget.reserve(8, "algorithms")
        with pytest.raises(MemoryBudgetExceeded):
            BufferPool(device, 4, budget=budget)

    def test_nexsort_rejects_cache_eating_the_minimum(self):
        from repro.errors import SortSpecError

        device = BlockDevice(block_size=256)
        store = RunStore(device)
        spec = SortSpec(default=ByAttribute("name"))
        document = Document.from_string(store, "<r><a name='x'/></r>")
        with pytest.raises(SortSpecError):
            nexsort(document, spec, memory_blocks=8, cache_blocks=4)


SPEC = SortSpec(default=ByAttribute("name"))

#: Figure-5 I/O totals of the unpooled seed implementation, captured before
#: the buffer pool existed: memory blocks -> (nexsort, merge sort) total
#: I/Os on level_fanout_events([11, 11, 11, 5], seed=5, pad_bytes=24) at
#: 512-byte blocks.  cache_blocks=0 must reproduce these exactly.
SEED_GOLDEN = {
    16: (4281, 7708),
    24: (4275, 7762),
    48: (4275, 4862),
    96: (4275, 4830),
}


def fig5_events():
    return level_fanout_events([11, 11, 11, 5], seed=5, pad_bytes=24)


class TestEndToEndFidelity:
    @pytest.mark.parametrize("memory", sorted(SEED_GOLDEN))
    def test_cache_zero_matches_seed_io_counts(self, memory):
        expected_nexsort, expected_merge = SEED_GOLDEN[memory]
        n = run_nexsort(fig5_events, memory, cache_blocks=0)
        m = run_merge_sort(fig5_events, memory, cache_blocks=0)
        assert n.total_ios == expected_nexsort
        assert m.total_ios == expected_merge
        assert n.detail["cache_hits"] == 0
        assert n.detail["cache_misses"] == 0

    def test_cached_sort_output_identical_to_uncached(self):
        def sort_with(cache):
            device = BlockDevice(block_size=512)
            store = RunStore(device)
            document = Document.from_events(
                store, level_fanout_events([4, 4, 4], seed=2, pad_bytes=24)
            )
            memory = 16 + cache
            result, _report = nexsort(
                document, SPEC, memory_blocks=memory, cache_blocks=cache
            )
            return result.to_string()

        assert sort_with(0) == sort_with(4)

    def test_spare_cache_cuts_output_phase_reads(self):
        """M/4 spare blocks of cache drop output-phase reads >= 20%.

        The cached run gets M + M/4 blocks with M/4 of them spent on the
        pool, so the sorting phase sees the same effective memory and
        produces the same run tree; the read savings are purely the
        Lemma 4.12 resume re-reads turning into cache hits.
        """

        def deep_events():
            return level_fanout_events(
                [4, 4, 4, 4, 4], seed=7, pad_bytes=24
            )

        memory = 64
        spare = memory // 4
        base = run_nexsort(deep_events, memory)
        cached = run_nexsort(
            deep_events, memory + spare, cache_blocks=spare
        )
        base_reads = base.detail["output_reads"]
        cached_reads = cached.detail["output_reads"]
        assert cached_reads <= 0.8 * base_reads
        assert cached.detail["cache_hits"] > 0
        assert cached.detail["cache_misses"] > 0
        assert cached.detail["cache_evictions"] > 0
        # The cache never makes the total worse either.
        assert cached.total_ios < base.total_ios

    def test_report_snapshot_includes_flushed_writebacks(self):
        """Deferred write-backs are flushed before the report snapshot:
        both runs moved the same data, so total writes stay comparable."""
        base = run_nexsort(fig5_events, 24)
        cached = run_nexsort(fig5_events, 30, cache_blocks=6)
        # Every block the sort produced must eventually be written: the
        # pool can only save re-writes of freed scratch blocks.
        assert cached.detail["cache_hits"] > 0
        assert 0 < cached.total_ios <= base.total_ios


class TestPooledRunStore:
    def test_attach_detach_roundtrip(self):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        pool = BufferPool(device, 4)
        store.attach_pool(pool)
        assert store.pool is pool
        assert store.io_target is pool
        store.detach_pool()
        assert store.pool is None
        assert store.io_target is device
        store.detach_pool()  # idempotent

    def test_double_attach_rejected(self):
        from repro.errors import RunError

        device = BlockDevice(block_size=256)
        store = RunStore(device)
        store.attach_pool(BufferPool(device, 4))
        with pytest.raises(RunError):
            store.attach_pool(BufferPool(device, 4))

    def test_pooled_rereads_are_hits(self):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        writer = store.create_writer("run_write")
        for i in range(20):
            writer.write_record(b"r%03d" % i)
        run = writer.finish()
        store.attach_pool(BufferPool(device, run.block_count + 1))
        def scan():
            reader = store.open_reader(run)
            count = 0
            while reader.read_record() is not None:
                count += 1
            return count

        # First scan: all misses.  Second scan: all hits, no device I/O.
        assert scan() == 20
        reads_after_first = device.stats.total_reads
        assert scan() == 20
        assert device.stats.total_reads == reads_after_first
        assert device.stats.cache_hits >= run.block_count

    def test_reader_readahead_prefetches_in_extents(self):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        writer = store.create_writer("run_write")
        for i in range(40):
            writer.write_record(b"x" * 64)
        run = writer.finish()
        assert run.block_count > 4
        store.attach_pool(
            BufferPool(device, run.block_count + 2, readahead=4)
        )
        reader = store.open_reader(run)
        while reader.read_record() is not None:
            pass
        # The whole run was read once, despite arriving 4 blocks at a time.
        assert device.stats.by_category["run_read"].reads == run.block_count
        assert (
            device.stats.by_category["run_read"].seq_reads
            == run.block_count
        )
