"""Unit tests for the internal-memory recursive sort (the oracle)."""

from repro.baselines import is_fully_sorted, sort_element
from repro.baselines.internal_sort import (
    comparison_count,
    sort_element_in_place,
)
from repro.keys import ByAttribute, SortSpec
from repro.xml import Element

from .conftest import random_tree


def spec():
    return SortSpec(default=ByAttribute("name"))


class TestSortElement:
    def test_sorts_every_level(self):
        tree = Element.parse(
            '<r name="r"><a name="2"><x name="9"/><x name="1"/></a>'
            '<a name="1"/></r>'
        )
        result = sort_element(tree, spec())
        assert is_fully_sorted(result, spec())
        names = [child.attrs["name"] for child in result.children]
        assert names == ["1", "2"]
        inner = result.children[1]
        assert [c.attrs["name"] for c in inner.children] == ["1", "9"]

    def test_original_untouched(self):
        tree = Element.parse('<r><a name="2"/><a name="1"/></r>')
        before = tree.canonical()
        sort_element(tree, spec())
        assert tree.canonical() == before

    def test_preserves_content(self):
        for seed in range(8):
            tree = random_tree(seed, text_leaves=True)
            result = sort_element(tree, spec())
            assert (
                result.unordered_canonical() == tree.unordered_canonical()
            )
            assert is_fully_sorted(result, spec())

    def test_idempotent(self):
        tree = random_tree(3)
        once = sort_element(tree, spec())
        twice = sort_element(once, spec())
        assert once == twice

    def test_stability_on_equal_keys(self):
        tree = Element.parse(
            '<r><a name="k" id="1"/><a name="k" id="2"/>'
            '<a name="a"/></r>'
        )
        result = sort_element(tree, spec())
        ids = [c.attrs.get("id") for c in result.children]
        assert ids == [None, "1", "2"]

    def test_depth_limit(self):
        tree = Element.parse(
            '<r name="r"><a name="2"><x name="9"/><x name="1"/></a>'
            '<a name="1"/></r>'
        )
        result = sort_element(tree, spec(), depth_limit=1)
        assert [c.attrs["name"] for c in result.children] == ["1", "2"]
        deep = [c for c in result.children if c.children][0]
        # Below the limit, document order survives.
        assert [c.attrs["name"] for c in deep.children] == ["9", "1"]

    def test_in_place_variant_matches(self):
        tree = random_tree(5)
        expected = sort_element(tree, spec())
        sort_element_in_place(tree, spec())
        assert tree == expected

    def test_comparison_count_positive_for_branchy_trees(self):
        tree = Element.parse('<r><a name="1"/><a name="2"/><a name="3"/></r>')
        assert comparison_count(tree) > 0
        assert comparison_count(Element("leaf")) == 0


class TestColumnarKernel:
    """kernel="columnar" batches every child-list sort (ISSUE 7)."""

    def test_matches_scalar_on_random_trees(self):
        for seed in range(8):
            tree = random_tree(seed, text_leaves=True)
            assert sort_element(tree, spec(), kernel="columnar") == (
                sort_element(tree, spec())
            )

    def test_matches_scalar_with_depth_limit(self):
        tree = random_tree(4)
        for limit in (None, 1, 2):
            assert sort_element(
                tree, spec(), depth_limit=limit, kernel="columnar"
            ) == sort_element(tree, spec(), depth_limit=limit)

    def test_in_place_columnar(self):
        tree = random_tree(6)
        expected = sort_element(tree, spec())
        sort_element_in_place(tree, spec(), kernel="columnar")
        assert tree == expected

    def test_stability_on_equal_keys(self):
        tree = Element.parse(
            '<r><a name="k" id="1"/><a name="k" id="2"/>'
            '<a name="a"/></r>'
        )
        result = sort_element(tree, spec(), kernel="columnar")
        ids = [c.attrs.get("id") for c in result.children]
        assert ids == [None, "1", "2"]
