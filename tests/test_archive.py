"""Tests for the versioned-archive application (related work, Section 2)."""

import pytest

from repro.baselines import is_fully_sorted
from repro.errors import MergeError
from repro.io import BlockDevice, RunStore
from repro.keys import ByText, SortSpec
from repro.merge import XMLArchive, VERSIONS_ATTRIBUTE
from repro.xml import Document, Element

from .conftest import random_tree


def fresh_store():
    device = BlockDevice(block_size=256)
    return device, RunStore(device)


def make_doc(store, xml: str) -> Document:
    return Document.from_element(store, Element.parse(xml))


V1 = (
    '<data name="root">'
    '<station name="alpha"><reading name="r1">10</reading></station>'
    '<station name="beta"><reading name="r1">20</reading></station>'
    "</data>"
)
V2 = (
    '<data name="root">'
    '<station name="alpha"><reading name="r1">10</reading>'
    '<reading name="r2">11</reading></station>'
    '<station name="gamma"><reading name="r1">30</reading></station>'
    "</data>"
)


class TestArchiving:
    def test_versions_annotation_accumulates(self, spec):
        _device, store = fresh_store()
        archive = XMLArchive(spec, memory_blocks=8)
        archive.add_version(make_doc(store, V1), 1)
        archive.add_version(make_doc(store, V2), 2)

        tree = archive.document.to_element()
        stations = {
            s.attrs["name"]: s.attrs[VERSIONS_ATTRIBUTE]
            for s in tree.find_all("station")
        }
        assert stations == {"alpha": "1,2", "beta": "1", "gamma": "2"}
        assert tree.attrs[VERSIONS_ATTRIBUTE] == "1,2"

    def test_archive_stays_sorted(self, spec):
        _device, store = fresh_store()
        archive = XMLArchive(spec, memory_blocks=8)
        archive.add_version(make_doc(store, V2), 1)
        archive.add_version(make_doc(store, V1), 2)
        assert is_fully_sorted(archive.document.to_element(), spec)

    def test_snapshot_reconstructs_each_version(self, spec):
        _device, store = fresh_store()
        archive = XMLArchive(spec, memory_blocks=8)
        archive.add_version(make_doc(store, V1), 1)
        archive.add_version(make_doc(store, V2), 2)

        from repro.baselines import sort_element

        snap1 = archive.snapshot(1).to_element()
        snap2 = archive.snapshot(2).to_element()
        assert snap1 == sort_element(Element.parse(V1), spec)
        assert snap2 == sort_element(Element.parse(V2), spec)

    def test_snapshot_strips_annotation(self, spec):
        _device, store = fresh_store()
        archive = XMLArchive(spec, memory_blocks=8)
        archive.add_version(make_doc(store, V1), 1)
        for node in archive.snapshot(1).to_element().iter():
            assert VERSIONS_ATTRIBUTE not in node.attrs

    def test_many_versions_of_random_documents(self, spec):
        _device, store = fresh_store()
        archive = XMLArchive(spec, memory_blocks=8)
        trees = [
            random_tree(seed, depth=3, max_fanout=3, key_space=6)
            for seed in range(4)
        ]
        # All versions share the root key so they merge at the top.
        for tree in trees:
            tree.attrs["name"] = "shared-root"
            tree.tag = "data"
        for version, tree in enumerate(trees, start=1):
            archive.add_version(
                Document.from_element(store, tree), version
            )
        assert archive.version_ids == [1, 2, 3, 4]
        assert is_fully_sorted(archive.document.to_element(), spec)

    def test_element_versions_index(self, spec):
        _device, store = fresh_store()
        archive = XMLArchive(spec, memory_blocks=8)
        archive.add_version(make_doc(store, V1), 1)
        archive.add_version(make_doc(store, V2), 2)
        index = archive.element_versions()
        beta_entries = [
            versions
            for path, versions in index.items()
            if path[-1] == (2, "beta")
        ]
        assert beta_entries == [{1}]


class TestValidation:
    def test_duplicate_version_rejected(self, spec):
        _device, store = fresh_store()
        archive = XMLArchive(spec, memory_blocks=8)
        archive.add_version(make_doc(store, V1), 1)
        with pytest.raises(MergeError):
            archive.add_version(make_doc(store, V2), 1)

    def test_unknown_snapshot_rejected(self, spec):
        _device, store = fresh_store()
        archive = XMLArchive(spec, memory_blocks=8)
        with pytest.raises(MergeError):
            archive.snapshot(1)

    def test_subtree_spec_rejected(self):
        with pytest.raises(MergeError):
            XMLArchive(SortSpec(default=ByText()))
