"""Tests for the workload generators."""

import pytest

from repro.errors import ReproError
from repro.generators import (
    PAPER_TABLE2_SHAPES,
    PAPER_TABLE2_SIZES,
    figure1_d1,
    figure1_d2,
    figure1_merged,
    figure1_spec,
    ibm_style_events,
    ibm_style_expected_elements,
    level_fanout_element_count,
    level_fanout_events,
    payroll_events,
    personnel_events,
    scaled_table2_shapes,
)
from repro.xml import Document, Element


class TestLevelFanout:
    def test_exact_shape(self, store):
        doc = Document.from_events(store, level_fanout_events([3, 4, 2]))
        assert doc.element_count == 1 + 3 + 12 + 24
        assert doc.height == 4
        assert doc.max_fanout == 4

    def test_element_count_formula(self):
        for fanouts in ([5], [2, 3], [3, 4, 2], [1, 1, 1, 1]):
            expected = level_fanout_element_count(fanouts)
            tree = Element.from_events(level_fanout_events(fanouts))
            assert tree.element_count() == expected

    def test_deterministic_by_seed(self):
        a = Element.from_events(level_fanout_events([4, 4], seed=9))
        b = Element.from_events(level_fanout_events([4, 4], seed=9))
        c = Element.from_events(level_fanout_events([4, 4], seed=10))
        assert a == b
        assert a != c

    def test_keys_have_duplicates_sometimes(self):
        tree = Element.from_events(level_fanout_events([50], seed=1))
        names = [c.attrs["name"] for c in tree.children]
        assert len(set(names)) < len(names) or len(names) == 50

    def test_padding_controls_size(self, store):
        small = Document.from_events(
            store, level_fanout_events([20], pad_bytes=4)
        )
        large = Document.from_events(
            store, level_fanout_events([20], pad_bytes=200)
        )
        assert large.payload_bytes > 2 * small.payload_bytes

    def test_text_leaves_option(self):
        tree = Element.from_events(
            level_fanout_events([2, 2], text_leaves=True)
        )
        leaves = [n for n in tree.iter() if not n.children]
        assert all(leaf.text for leaf in leaves)

    def test_bad_fanouts_rejected(self):
        with pytest.raises(ReproError):
            list(level_fanout_events([]))
        with pytest.raises(ReproError):
            list(level_fanout_events([0]))


class TestTable2Shapes:
    def test_paper_shapes_recorded(self):
        assert PAPER_TABLE2_SHAPES[4] == [144, 144, 144]
        assert PAPER_TABLE2_SIZES[2] == 3000001

    def test_paper_shape_sizes_match_formula(self):
        for height, fanouts in PAPER_TABLE2_SHAPES.items():
            assert (
                level_fanout_element_count(fanouts)
                == PAPER_TABLE2_SIZES[height]
            )

    def test_scaled_shapes_are_near_target(self):
        shapes = scaled_table2_shapes(3000)
        assert set(shapes) == {2, 3, 4, 5, 6}
        for height, fanouts in shapes.items():
            assert len(fanouts) == height - 1
            count = level_fanout_element_count(fanouts)
            assert 0.5 * 3000 <= count <= 1.6 * 3000, (height, count)

    def test_scaled_heights_decrease_fanout(self):
        shapes = scaled_table2_shapes(5000)
        assert shapes[2][0] > shapes[3][0] > shapes[6][0]


class TestIBMStyle:
    def test_height_and_fanout_bounds(self, store):
        doc = Document.from_events(store, ibm_style_events(4, 6, seed=3))
        assert doc.height == 4
        assert 1 <= doc.max_fanout <= 6

    def test_deterministic_by_seed(self):
        a = Element.from_events(ibm_style_events(3, 5, seed=1))
        b = Element.from_events(ibm_style_events(3, 5, seed=1))
        assert a == b

    def test_height_one(self):
        tree = Element.from_events(ibm_style_events(1, 5))
        assert tree.element_count() == 1

    def test_expected_elements_estimate(self):
        estimate = ibm_style_expected_elements(3, 5)
        assert estimate == 1 + 3 + 9

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            list(ibm_style_events(0, 5))
        with pytest.raises(ReproError):
            list(ibm_style_events(3, 0))


class TestCompanyDocuments:
    def test_figure1_documents_match_paper_structure(self):
        d1 = figure1_d1()
        assert d1.element_count() == 9
        assert d1.find_all("region")[1].attrs["name"] == "AC"
        d2 = figure1_d2()
        assert d2.element_count() == 9
        merged = figure1_merged()
        # 1 company + 3 regions + 3 branches + 3 employees + 4 leaves.
        assert merged.element_count() == 14

    def test_figure1_spec_orders_employees_by_id(self):
        spec = figure1_spec()
        assert spec.rule_for("employee").attribute == "ID"
        assert spec.rule_for("region").attribute == "name"

    def test_scaled_documents_share_employees(self):
        left = Element.from_events(
            personnel_events(2, 2, 10, shared_fraction=0.5)
        )
        right = Element.from_events(
            payroll_events(2, 2, 10, shared_fraction=0.5)
        )

        def ids(tree):
            return {
                (r.attrs["name"], b.attrs["name"], e.attrs["ID"])
                for r in tree.find_all("region")
                for b in r.find_all("branch")
                for e in b.find_all("employee")
            }

        shared = ids(left) & ids(right)
        assert len(shared) >= 2 * 2 * 3  # roughly half of 10 per branch

    def test_no_sharing_when_fraction_zero(self):
        left = Element.from_events(
            personnel_events(1, 1, 10, shared_fraction=0.0)
        )
        right = Element.from_events(
            payroll_events(1, 1, 10, shared_fraction=0.0)
        )
        left_ids = {
            e.attrs["ID"]
            for e in left.find("region").find("branch").find_all("employee")
        }
        right_ids = {
            e.attrs["ID"]
            for e in right.find("region").find("branch").find_all("employee")
        }
        assert not left_ids & right_ids

    def test_personnel_and_payroll_have_different_leaves(self):
        left = Element.from_events(personnel_events(1, 1, 2))
        right = Element.from_events(payroll_events(1, 1, 2))
        left_leaf_tags = {
            c.tag
            for e in left.find("region").find("branch").find_all("employee")
            for c in e.children
        }
        right_leaf_tags = {
            c.tag
            for e in right.find("region").find("branch").find_all("employee")
            for c in e.children
        }
        assert left_leaf_tags == {"name", "phone"}
        assert right_leaf_tags == {"salary", "bonus"}
