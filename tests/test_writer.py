"""Unit tests for XML serialization."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xml import Element, element_to_string, events_to_string
from repro.xml.tokens import EndTag, StartTag, Text
from repro.xml.writer import escape_attr, escape_text


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_attr_escapes(self):
        assert escape_attr('he said "hi" & left') == (
            "he said &quot;hi&quot; &amp; left"
        )

    def test_escaped_output_reparses(self):
        tree = Element("a", {"v": '<&">'}, 'text <&> "quoted"')
        assert Element.parse(element_to_string(tree)) == tree


class TestCompactOutput:
    def test_empty_element_self_closes(self):
        assert element_to_string(Element("a")) == "<a/>"

    def test_attributes_in_insertion_order(self):
        tree = Element("a", {"z": "1", "a": "2"})
        assert element_to_string(tree) == '<a z="1" a="2"/>'

    def test_text_and_children(self):
        tree = Element.parse("<a>t<b/></a>")
        assert element_to_string(tree) == "<a>t<b/></a>"

    def test_unbalanced_stream_rejected(self):
        with pytest.raises(XMLSyntaxError):
            events_to_string([StartTag("a")])
        with pytest.raises(XMLSyntaxError):
            events_to_string([StartTag("a"), EndTag("a"), EndTag("b")])


class TestPrettyOutput:
    def test_indentation(self):
        tree = Element.parse("<a><b><c/></b></a>")
        text = element_to_string(tree, indent="  ")
        assert "\n  <b>" in text
        assert "\n    <c/>" in text

    def test_leaf_text_stays_inline(self):
        tree = Element.parse("<a><b>value</b></a>")
        text = element_to_string(tree, indent="  ")
        assert "<b>value</b>" in text

    def test_pretty_output_reparses_to_same_tree(self):
        tree = Element.parse(
            '<company><region name="NE"><branch name="D">'
            "<employee ID=\"1\"><name>Smith</name></employee>"
            "</branch></region></company>"
        )
        assert Element.parse(element_to_string(tree, indent="  ")) == tree

    def test_events_to_string_accepts_text_events(self):
        text = events_to_string(
            [StartTag("a"), Text("x"), Text("y"), EndTag("a")]
        )
        assert text == "<a>xy</a>"
