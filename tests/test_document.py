"""Unit tests for disk-resident documents."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xml import CompactionConfig, Document, Element
from repro.xml.tokens import EndTag, StartTag

from .conftest import random_tree

XML = (
    '<company><region name="NE"/><region name="AC">'
    '<branch name="Durham"><employee ID="454"/>'
    '<employee ID="323"><name>Smith</name></employee></branch>'
    "</region></company>"
)


class TestStats:
    def test_measurements(self, store):
        doc = Document.from_string(store, XML)
        assert doc.element_count == 7
        assert doc.max_fanout == 2
        assert doc.height == 5
        assert doc.stats.root_tag == "company"
        assert doc.block_count >= 1

    def test_multiple_roots_rejected(self, store):
        events = [StartTag("a"), EndTag("a"), StartTag("b"), EndTag("b")]
        with pytest.raises(XMLSyntaxError):
            Document.from_events(store, events)

    def test_unbalanced_rejected(self, store):
        with pytest.raises(XMLSyntaxError):
            Document.from_events(store, [StartTag("a")])

    def test_empty_rejected(self, store):
        with pytest.raises(XMLSyntaxError):
            Document.from_events(store, [])


class TestRoundTrips:
    def test_plain_round_trip(self, store):
        doc = Document.from_string(store, XML)
        assert doc.to_element() == Element.parse(XML)

    def test_compact_round_trip(self, store):
        doc = Document.from_string(store, XML, CompactionConfig())
        assert doc.to_element() == Element.parse(XML)

    def test_compaction_really_shrinks(self, store):
        tree = random_tree(11, depth=4, max_fanout=4)
        plain = Document.from_element(store, tree)
        compact = Document.from_element(store, tree, CompactionConfig())
        assert compact.payload_bytes < plain.payload_bytes

    def test_compact_tokens_have_no_end_tags(self, store):
        doc = Document.from_string(store, XML, CompactionConfig())
        tokens = list(doc.iter_tokens("export"))
        assert not any(isinstance(t, EndTag) for t in tokens)
        events = list(doc.iter_events("export"))
        assert any(isinstance(t, EndTag) for t in events)

    def test_to_string_round_trip(self, store):
        doc = Document.from_string(store, XML)
        assert Element.parse(doc.to_string()) == Element.parse(XML)

    def test_random_trees_round_trip_both_modes(self, store):
        for seed in range(5):
            tree = random_tree(seed, depth=4, max_fanout=4, text_leaves=True)
            plain = Document.from_element(store, tree)
            compact = Document.from_element(
                store, tree, CompactionConfig()
            )
            assert plain.to_element() == tree
            assert compact.to_element() == tree


class TestIOAccounting:
    def test_loading_writes_blocks(self, device, store):
        Document.from_string(store, XML, category="load")
        assert device.stats.by_category["load"].writes >= 1

    def test_scanning_reads_every_block_once(self, device, store):
        tree = random_tree(3, depth=5, max_fanout=5)
        doc = Document.from_element(store, tree)
        before = device.stats.snapshot()
        for _ in doc.iter_events("input_scan"):
            pass
        delta = device.stats.since(before)
        assert delta.category_total("input_scan") == doc.block_count

    def test_free_releases_blocks(self, device, store):
        doc = Document.from_string(store, XML)
        occupied = device.occupied_blocks
        doc.free()
        assert device.occupied_blocks < occupied
