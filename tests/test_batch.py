"""Tests for batch update application (paper Section 1)."""

import pytest

from repro.baselines import is_fully_sorted
from repro.core import nexsort
from repro.errors import MergeError
from repro.generators import figure1_d1, figure1_spec
from repro.io import BlockDevice, RunStore
from repro.keys import ByText, SortSpec
from repro.merge import BatchApplier, apply_batch
from repro.xml import Document, Element


def fresh_store():
    device = BlockDevice(block_size=256)
    return device, RunStore(device)


def sorted_figure1(store):
    spec = figure1_spec()
    doc = Document.from_element(store, figure1_d1())
    result, _ = nexsort(doc, spec, memory_blocks=8)
    return result, spec


def batch_of(store, xml: str) -> Document:
    return Document.from_element(store, Element.parse(xml))


class TestUpserts:
    def test_insert_new_employee(self):
        _device, store = fresh_store()
        base, spec = sorted_figure1(store)
        batch = batch_of(
            store,
            '<company><region name="AC"><branch name="Durham">'
            '<employee ID="999"><name>New</name></employee>'
            "</branch></region></company>",
        )
        result, report = apply_batch(base, batch, spec, memory_blocks=8)
        assert report.upserts >= 1
        employees = [
            e.attrs["ID"]
            for region in result.to_element().find_all("region")
            for branch in region.find_all("branch")
            for e in branch.find_all("employee")
        ]
        assert "999" in employees

    def test_update_existing_element_merges_content(self):
        _device, store = fresh_store()
        base, spec = sorted_figure1(store)
        batch = batch_of(
            store,
            '<company><region name="AC"><branch name="Durham">'
            '<employee ID="323" grade="senior"/></branch></region>'
            "</company>",
        )
        result, _report = apply_batch(base, batch, spec, memory_blocks=8)
        employee = [
            e
            for region in result.to_element().find_all("region")
            for branch in region.find_all("branch")
            for e in branch.find_all("employee")
            if e.attrs["ID"] == "323"
        ][0]
        assert employee.attrs["grade"] == "senior"
        assert employee.find("name").text == "Smith"  # old content kept

    def test_batch_text_replaces(self, spec):
        _device, store = fresh_store()
        base_doc = Document.from_element(
            store, Element.parse('<r name="k">old</r>')
        )
        base, _ = nexsort(base_doc, spec, memory_blocks=8)
        batch = batch_of(store, '<r name="k">new</r>')
        result, _report = apply_batch(base, batch, spec, memory_blocks=8)
        assert result.to_element().text == "new"

    def test_insert_whole_region(self):
        _device, store = fresh_store()
        base, spec = sorted_figure1(store)
        batch = batch_of(
            store,
            '<company><region name="ZZ"><branch name="Omaha"/></region>'
            "</company>",
        )
        result, _report = apply_batch(base, batch, spec, memory_blocks=8)
        names = [
            r.attrs["name"] for r in result.to_element().find_all("region")
        ]
        assert names == ["AC", "NE", "ZZ"]  # still sorted


class TestDeletes:
    def test_delete_existing(self):
        _device, store = fresh_store()
        base, spec = sorted_figure1(store)
        batch = batch_of(
            store,
            '<company><region name="AC"><branch name="Durham">'
            '<employee ID="454" op="delete"/></branch></region></company>',
        )
        result, report = apply_batch(base, batch, spec, memory_blocks=8)
        assert report.deletes == 1
        ids = [
            e.attrs["ID"]
            for region in result.to_element().find_all("region")
            for branch in region.find_all("branch")
            for e in branch.find_all("employee")
        ]
        assert "454" not in ids
        assert "323" in ids

    def test_delete_missing_is_counted(self):
        _device, store = fresh_store()
        base, spec = sorted_figure1(store)
        batch = batch_of(
            store,
            '<company><region name="AC"><branch name="Durham">'
            '<employee ID="111" op="delete"/></branch></region></company>',
        )
        _result, report = apply_batch(base, batch, spec, memory_blocks=8)
        assert report.missed_deletes == 1
        assert report.deletes == 0


class TestSortedness:
    def test_result_remains_sorted(self):
        """The paper's guarantee: 'The result document remains sorted.'"""
        _device, store = fresh_store()
        base, spec = sorted_figure1(store)
        batch = batch_of(
            store,
            '<company><region name="AA"/><region name="ZZ"/>'
            '<region name="AC"><branch name="Aachen"/></region></company>',
        )
        result, _report = apply_batch(base, batch, spec, memory_blocks=8)
        assert is_fully_sorted(result.to_element(), spec)

    def test_unsorted_batch_is_sorted_first(self):
        _device, store = fresh_store()
        base, spec = sorted_figure1(store)
        batch = batch_of(
            store,
            '<company><region name="ZZ"/><region name="AA"/></company>',
        )
        result, _report = apply_batch(
            base, batch, spec, memory_blocks=8, batch_is_sorted=False
        )
        names = [
            r.attrs["name"] for r in result.to_element().find_all("region")
        ]
        assert names == sorted(names)

    def test_presorted_batch_skips_the_sort(self):
        _device, store = fresh_store()
        base, spec = sorted_figure1(store)
        batch_doc = Document.from_element(
            store,
            Element.parse(
                '<company><region name="AA"/><region name="ZZ"/></company>'
            ),
        )
        result, _report = apply_batch(
            base, batch_doc, spec, memory_blocks=8, batch_is_sorted=True
        )
        assert is_fully_sorted(result.to_element(), spec)


class TestValidation:
    def test_subtree_spec_rejected(self):
        with pytest.raises(MergeError):
            BatchApplier(SortSpec(default=ByText()))

    def test_mismatched_roots_rejected(self):
        _device, store = fresh_store()
        base, spec = sorted_figure1(store)
        batch = batch_of(store, "<wrong/>")
        with pytest.raises(MergeError):
            apply_batch(base, batch, spec, memory_blocks=8)
