"""Unit tests for the Element tree model."""

import pytest

from repro.errors import XMLSyntaxError
from repro.keys import ByAttribute, SortSpec
from repro.xml import Element
from repro.xml.tokens import EndTag, StartTag, Text


def sample() -> Element:
    return Element.parse(
        '<company><region name="NE"/><region name="AC">'
        '<branch name="Durham"><employee ID="454"/></branch>'
        "</region></company>"
    )


class TestConstruction:
    def test_from_events_round_trip(self):
        tree = sample()
        rebuilt = Element.from_events(tree.to_events())
        assert rebuilt == tree

    def test_from_events_rejects_unbalanced(self):
        with pytest.raises(XMLSyntaxError):
            Element.from_events([StartTag("a")])

    def test_from_events_rejects_multiple_roots(self):
        with pytest.raises(XMLSyntaxError):
            Element.from_events(
                [StartTag("a"), EndTag("a"), StartTag("b"), EndTag("b")]
            )

    def test_from_events_rejects_stray_text(self):
        with pytest.raises(XMLSyntaxError):
            Element.from_events([Text("loose")])

    def test_text_concatenation(self):
        tree = Element.from_events(
            [
                StartTag("a"),
                Text("one "),
                StartTag("b"),
                EndTag("b"),
                Text("two"),
                EndTag("a"),
            ]
        )
        assert tree.text == "one two"


class TestNavigation:
    def test_find_first_child(self):
        tree = sample()
        region = tree.find("region")
        assert region is not None
        assert region.attrs["name"] == "NE"

    def test_find_missing_returns_none(self):
        assert sample().find("nope") is None

    def test_find_all(self):
        assert len(sample().find_all("region")) == 2

    def test_find_path(self):
        employee = sample().find_path("region/branch/employee")
        assert employee is None  # first region has no branch
        second = sample().find_all("region")[1]
        assert second.find_path("branch/employee").attrs["ID"] == "454"

    def test_iter_is_preorder(self):
        tags = [node.tag for node in sample().iter()]
        assert tags == ["company", "region", "region", "branch", "employee"]


class TestMeasurements:
    def test_element_count(self):
        assert sample().element_count() == 5

    def test_height(self):
        assert sample().height() == 4
        assert Element("leaf").height() == 1

    def test_max_fanout(self):
        assert sample().max_fanout() == 2
        assert Element("leaf").max_fanout() == 0


class TestCanonicals:
    def test_equality_is_structural(self):
        assert sample() == sample()
        other = sample()
        other.children[0].attrs["name"] = "XX"
        assert sample() != other

    def test_attr_order_is_insignificant(self):
        a = Element("e", {"x": "1", "y": "2"})
        b = Element("e", {"y": "2", "x": "1"})
        assert a == b

    def test_child_order_is_significant_for_canonical(self):
        a = Element("e", {}, "", [Element("x"), Element("y")])
        b = Element("e", {}, "", [Element("y"), Element("x")])
        assert a != b
        assert a.unordered_canonical() == b.unordered_canonical()

    def test_unordered_canonical_detects_content_change(self):
        a = Element("e", {}, "", [Element("x", {"k": "1"})])
        b = Element("e", {}, "", [Element("x", {"k": "2"})])
        assert a.unordered_canonical() != b.unordered_canonical()


class TestIsSortedBy:
    def test_sorted_detection(self):
        spec = SortSpec(default=ByAttribute("name"))
        unsorted = Element.parse(
            '<r><a name="b"/><a name="a"/></r>'
        )
        assert not unsorted.is_sorted_by(spec.key_of_element)
        sorted_tree = Element.parse(
            '<r><a name="a"/><a name="b"/></r>'
        )
        assert sorted_tree.is_sorted_by(spec.key_of_element)

    def test_depth_limit_ignores_deep_levels(self):
        spec = SortSpec(default=ByAttribute("name"))
        tree = Element.parse(
            '<r><a name="a"><x name="z"/><x name="y"/></a></r>'
        )
        assert not tree.is_sorted_by(spec.key_of_element)
        # Level-2 <a>'s children are unsorted, so depth_limit=2 still fails;
        # depth_limit=1 only constrains the root's child list.
        assert not tree.is_sorted_by(spec.key_of_element, depth_limit=2)
        assert tree.is_sorted_by(spec.key_of_element, depth_limit=1)
