"""Shared fixtures and tree builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.io import BlockDevice, RunStore
from repro.keys import ByAttribute, SortSpec
from repro.xml import Document, Element


@pytest.fixture
def device() -> BlockDevice:
    """A small-block device so experiments exercise paging at tiny sizes."""
    return BlockDevice(block_size=256)


@pytest.fixture
def store(device: BlockDevice) -> RunStore:
    return RunStore(device)


@pytest.fixture
def spec() -> SortSpec:
    """The workhorse criterion: order everything by its ``name``."""
    return SortSpec(default=ByAttribute("name"))


def random_tree(
    seed: int,
    depth: int = 4,
    max_fanout: int = 5,
    pad: int = 0,
    text_leaves: bool = False,
    key_space: int = 1000,
) -> Element:
    """A random document tree with seeded keys (duplicates possible)."""
    rng = random.Random(seed)

    def build(level: int) -> Element:
        attrs = {"name": f"n{rng.randrange(key_space):04d}"}
        if pad:
            attrs["pad"] = "x" * pad
        children = []
        if level < depth:
            for _ in range(rng.randint(1, max_fanout)):
                children.append(build(level + 1))
        text = ""
        if text_leaves and not children:
            text = f"v{rng.randrange(key_space)}"
        return Element("e", attrs, text, children)

    return build(1)


def flat_tree(count: int, seed: int = 0, pad: int = 8) -> Element:
    """A two-level document: one root with ``count`` children."""
    rng = random.Random(seed)
    children = [
        Element(
            "item",
            {"name": f"n{rng.randrange(10 * count):06d}", "pad": "y" * pad},
        )
        for _ in range(count)
    ]
    return Element("root", {}, "", children)


def chain_tree(length: int) -> Element:
    """A degenerate single-path document of the given height."""
    node = Element("leaf", {"name": "end"})
    for index in range(length - 1):
        node = Element("link", {"name": f"l{index:05d}"}, "", [node])
    return node


def store_tree(
    store: RunStore, tree: Element, compaction=None
) -> Document:
    return Document.from_element(store, tree, compaction=compaction)
