"""Unit tests for the simulated block device and its accounting."""

import pytest

from repro.errors import DeviceError
from repro.io import BlockDevice, CostModel


class TestAllocation:
    def test_allocate_returns_consecutive_extents(self):
        device = BlockDevice(block_size=256)
        first = device.allocate(3)
        second = device.allocate(2)
        assert first == 0
        assert second == 3  # same pool: consecutive within the extent
        assert device.allocated_blocks >= 5

    def test_pools_keep_streams_contiguous(self):
        """Two streams allocating alternately each get consecutive ids."""
        device = BlockDevice(block_size=256)
        a_blocks = []
        b_blocks = []
        for _ in range(10):
            a_blocks.append(device.allocate(1, pool="a"))
            b_blocks.append(device.allocate(1, pool="b"))
        assert a_blocks == list(range(a_blocks[0], a_blocks[0] + 10))
        assert b_blocks == list(range(b_blocks[0], b_blocks[0] + 10))

    def test_large_allocation_gets_dedicated_extent(self):
        from repro.io.device import ALLOCATION_CHUNK

        device = BlockDevice(block_size=256)
        start = device.allocate(ALLOCATION_CHUNK + 5, pool="big")
        follow = device.allocate(1, pool="big")
        assert follow >= start + ALLOCATION_CHUNK + 5

    def test_allocate_zero_rejected(self):
        device = BlockDevice(block_size=256)
        with pytest.raises(DeviceError):
            device.allocate(0)

    def test_chunk_sized_request_gets_dedicated_extent(self):
        """count == ALLOCATION_CHUNK bypasses the pool cursor entirely."""
        from repro.io.device import ALLOCATION_CHUNK

        device = BlockDevice(block_size=256)
        small = device.allocate(1, pool="p")
        big = device.allocate(ALLOCATION_CHUNK, pool="p")
        after = device.allocate(1, pool="p")
        # The dedicated extent starts past every block handed out so far…
        assert big >= small + 1
        # …and the pool's own extent is untouched by it: the next small
        # allocation continues right after the first one.
        assert after == small + 1

    def test_dedicated_extent_is_contiguous(self):
        from repro.io.device import ALLOCATION_CHUNK

        device = BlockDevice(block_size=256)
        count = ALLOCATION_CHUNK + 7
        start = device.allocate(count, pool="big")
        # Every id in [start, start+count) is usable and distinct from
        # anything a later allocation returns.
        device.write_block(start + count - 1, b"end")
        other = device.allocate(1, pool="big")
        assert other >= start + count

    def test_interleaved_pools_refill_independently(self):
        """Pool extents refill without perturbing other pools' cursors."""
        from repro.io.device import ALLOCATION_CHUNK

        device = BlockDevice(block_size=256)
        a_blocks = [device.allocate(1, pool="a")]
        # Exhaust pool a's first extent while pool b allocates in between.
        b_blocks = []
        for _ in range(ALLOCATION_CHUNK):
            b_blocks.append(device.allocate(1, pool="b"))
            a_blocks.append(device.allocate(1, pool="a"))
        # a crossed an extent boundary exactly once: its ids form two
        # contiguous stretches.
        breaks = [
            i
            for i in range(1, len(a_blocks))
            if a_blocks[i] != a_blocks[i - 1] + 1
        ]
        assert len(breaks) == 1
        # b stayed within one extent: fully contiguous.
        assert b_blocks == list(range(b_blocks[0], b_blocks[0] + len(b_blocks)))

    def test_multi_block_request_spanning_refill_stays_contiguous(self):
        from repro.io.device import ALLOCATION_CHUNK

        device = BlockDevice(block_size=256)
        device.allocate(ALLOCATION_CHUNK - 1, pool="p")
        # 2 blocks no longer fit in the current extent: the request must
        # come back contiguous from a fresh extent, not straddle two.
        start = device.allocate(2, pool="p")
        follow = device.allocate(1, pool="p")
        assert follow == start + 2

    def test_tiny_block_size_rejected(self):
        with pytest.raises(DeviceError):
            BlockDevice(block_size=16)


class TestReadWrite:
    def test_round_trip(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"hello")
        assert device.read_block(block) == b"hello"

    def test_write_is_copied(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        data = bytearray(b"abc")
        device.write_block(block, data)
        data[0] = ord("z")
        assert device.read_block(block) == b"abc"

    def test_read_unallocated_block_fails(self):
        device = BlockDevice(block_size=256)
        with pytest.raises(DeviceError):
            device.read_block(0)

    def test_read_never_written_block_fails(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        with pytest.raises(DeviceError):
            device.read_block(block)

    def test_oversized_write_fails(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        with pytest.raises(DeviceError):
            device.write_block(block, b"x" * 257)

    def test_full_block_write_allowed(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"x" * 256)
        assert len(device.read_block(block)) == 256

    def test_freed_block_unreadable(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"data")
        device.free_blocks([block])
        with pytest.raises(DeviceError):
            device.read_block(block)

    def test_free_is_not_counted_io(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"data")
        before = device.stats.total_ios
        device.free_blocks([block])
        assert device.stats.total_ios == before

    def test_free_forgets_category_last_access(self):
        """A category whose last access was freed restarts its stream."""
        device = BlockDevice(block_size=256)
        start = device.allocate(3)
        device.write_block(start, b"a", "s")
        device.write_block(start + 1, b"b", "s")
        device.free_blocks([start + 1])
        # Without the purge this backward access would be judged against
        # the dead block and charged as random; after it the stream
        # restarts and the first access counts sequential.
        device.write_block(start, b"c", "s")
        counters = device.stats.by_category["s"]
        assert counters.writes == 3
        assert counters.seq_writes == 3

    def test_free_keeps_other_categories_last_access(self):
        device = BlockDevice(block_size=256)
        start = device.allocate(4)
        device.write_block(start, b"a", "keep")
        device.write_block(start + 2, b"b", "drop")
        device.free_blocks([start + 2])
        # "keep" still remembers start: start+1 follows it sequentially.
        device.write_block(start + 1, b"c", "keep")
        # "drop" forgot: a backward access still counts sequential
        # because the stream restarted.
        device.write_block(start, b"d", "drop")
        assert device.stats.by_category["keep"].seq_writes == 2
        assert device.stats.by_category["drop"].seq_writes == 2


class TestVectoredIO:
    def _loop_equivalent(self, make_ops):
        """Run the same accesses vectored and looped; compare counters."""
        results = []
        for vectored in (False, True):
            device = BlockDevice(block_size=256)
            make_ops(device, vectored)
            counters = device.stats.by_category["v"]
            results.append(
                (
                    counters.reads,
                    counters.writes,
                    counters.seq_reads,
                    counters.seq_writes,
                )
            )
        assert results[0] == results[1]
        return results[0]

    def test_contiguous_write_read_matches_loop(self):
        def ops(device, vectored):
            start = device.allocate(4)
            ids = [start + i for i in range(4)]
            datas = [bytes([i]) for i in range(4)]
            if vectored:
                device.write_blocks(ids, datas, "v")
                assert device.read_blocks(ids, "v") == datas
            else:
                for i, d in zip(ids, datas):
                    device.write_block(i, d, "v")
                for i, d in zip(ids, datas):
                    assert device.read_block(i, "v") == d

        reads, writes, seq_reads, seq_writes = self._loop_equivalent(ops)
        assert (reads, writes) == (4, 4)
        assert seq_writes == 4
        # Re-reading block `start` right after writing start+3 is a jump.
        assert seq_reads == 3

    def test_scattered_ids_match_loop(self):
        def ops(device, vectored):
            start = device.allocate(6)
            ids = [start + 4, start, start + 1, start + 5]
            datas = [b"w", b"x", b"y", b"z"]
            if vectored:
                device.write_blocks(ids, datas, "v")
                device.read_blocks(ids, "v")
            else:
                for i, d in zip(ids, datas):
                    device.write_block(i, d, "v")
                for i in ids:
                    device.read_block(i, "v")

        reads, writes, seq_reads, seq_writes = self._loop_equivalent(ops)
        assert (reads, writes) == (4, 4)
        # First write opens the stream (sequential); start -> start+1 is
        # the only other adjacent step.
        assert seq_writes == 2

    def test_empty_vectored_calls_are_free(self):
        device = BlockDevice(block_size=256)
        assert device.read_blocks([], "v") == []
        device.write_blocks([], [], "v")
        assert device.stats.total_ios == 0

    def test_mismatched_payload_count_rejected(self):
        device = BlockDevice(block_size=256)
        start = device.allocate(2)
        with pytest.raises(DeviceError):
            device.write_blocks([start, start + 1], [b"only-one"], "v")

    def test_vectored_read_of_unwritten_block_fails(self):
        device = BlockDevice(block_size=256)
        start = device.allocate(2)
        device.write_block(start, b"x")
        with pytest.raises(DeviceError):
            device.read_blocks([start, start + 1], "v")


class TestAccounting:
    def test_reads_and_writes_counted_by_category(self):
        device = BlockDevice(block_size=256)
        a = device.allocate(2)
        device.write_block(a, b"1", "alpha")
        device.write_block(a + 1, b"2", "alpha")
        device.read_block(a, "beta")
        summary = device.stats.summary()
        assert summary["alpha"]["writes"] == 2
        assert summary["alpha"]["reads"] == 0
        assert summary["beta"]["reads"] == 1

    def test_sequential_detection_within_category(self):
        device = BlockDevice(block_size=256)
        start = device.allocate(4)
        for offset in range(4):
            device.write_block(start + offset, b"x", "stream")
        counters = device.stats.by_category["stream"]
        # First access of a category counts as sequential.
        assert counters.seq_writes == 4

    def test_interleaved_categories_stay_sequential(self):
        """Two sequential streams must not charge each other seeks."""
        device = BlockDevice(block_size=256)
        a = device.allocate(3)
        b = device.allocate(3)
        for offset in range(3):
            device.write_block(a + offset, b"x", "one")
            device.write_block(b + offset, b"y", "two")
        assert device.stats.by_category["one"].seq_writes == 3
        assert device.stats.by_category["two"].seq_writes == 3

    def test_backward_access_is_random(self):
        device = BlockDevice(block_size=256)
        start = device.allocate(3)
        for offset in range(3):
            device.write_block(start + offset, b"x", "s")
        device.read_block(start + 2, "s")  # jump: not previous + 1
        device.read_block(start, "s")  # backward: random
        counters = device.stats.by_category["s"]
        assert counters.seq_reads == 0
        assert counters.reads == 2

    def test_snapshot_differencing(self):
        device = BlockDevice(block_size=256)
        block = device.allocate(2)
        device.write_block(block, b"x", "phase1")
        snapshot = device.stats.snapshot()
        device.write_block(block + 1, b"y", "phase2")
        delta = device.stats.since(snapshot)
        assert delta.total_ios == 1
        assert delta.category_total("phase2") == 1
        assert delta.category_total("phase1") == 0

    def test_bytes_to_blocks(self):
        device = BlockDevice(block_size=256)
        assert device.bytes_to_blocks(0) == 0
        assert device.bytes_to_blocks(1) == 1
        assert device.bytes_to_blocks(256) == 1
        assert device.bytes_to_blocks(257) == 2


class TestCostModel:
    def test_io_seconds_charges_seeks_for_random(self):
        model = CostModel(seek_seconds=0.01, transfer_seconds=0.001)
        sequential_only = model.io_seconds(sequential=10, random=0)
        with_seeks = model.io_seconds(sequential=0, random=10)
        assert with_seeks > sequential_only
        assert sequential_only == pytest.approx(0.010)
        assert with_seeks == pytest.approx(0.110)

    def test_cpu_seconds(self):
        model = CostModel(compare_seconds=1e-6, token_seconds=1e-7)
        assert model.cpu_seconds(1000, 0) == pytest.approx(1e-3)
        assert model.cpu_seconds(0, 1000) == pytest.approx(1e-4)

    def test_elapsed_combines_io_and_cpu(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"x", "w")
        device.stats.record_comparisons(1000)
        assert device.stats.elapsed_seconds() == pytest.approx(
            device.stats.io_seconds() + device.stats.cpu_seconds()
        )

    def test_simulated_time_monotone_in_ios(self):
        device = BlockDevice(block_size=256)
        blocks = device.allocate(10)
        times = []
        for offset in range(10):
            device.write_block(blocks + offset, b"x", "w")
            times.append(device.stats.elapsed_seconds())
        assert times == sorted(times)
        assert times[0] > 0
