"""Unit tests for the simulated block device and its accounting."""

import pytest

from repro.errors import DeviceError
from repro.io import BlockDevice, CostModel


class TestAllocation:
    def test_allocate_returns_consecutive_extents(self):
        device = BlockDevice(block_size=256)
        first = device.allocate(3)
        second = device.allocate(2)
        assert first == 0
        assert second == 3  # same pool: consecutive within the extent
        assert device.allocated_blocks >= 5

    def test_pools_keep_streams_contiguous(self):
        """Two streams allocating alternately each get consecutive ids."""
        device = BlockDevice(block_size=256)
        a_blocks = []
        b_blocks = []
        for _ in range(10):
            a_blocks.append(device.allocate(1, pool="a"))
            b_blocks.append(device.allocate(1, pool="b"))
        assert a_blocks == list(range(a_blocks[0], a_blocks[0] + 10))
        assert b_blocks == list(range(b_blocks[0], b_blocks[0] + 10))

    def test_large_allocation_gets_dedicated_extent(self):
        from repro.io.device import ALLOCATION_CHUNK

        device = BlockDevice(block_size=256)
        start = device.allocate(ALLOCATION_CHUNK + 5, pool="big")
        follow = device.allocate(1, pool="big")
        assert follow >= start + ALLOCATION_CHUNK + 5

    def test_allocate_zero_rejected(self):
        device = BlockDevice(block_size=256)
        with pytest.raises(DeviceError):
            device.allocate(0)

    def test_tiny_block_size_rejected(self):
        with pytest.raises(DeviceError):
            BlockDevice(block_size=16)


class TestReadWrite:
    def test_round_trip(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"hello")
        assert device.read_block(block) == b"hello"

    def test_write_is_copied(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        data = bytearray(b"abc")
        device.write_block(block, data)
        data[0] = ord("z")
        assert device.read_block(block) == b"abc"

    def test_read_unallocated_block_fails(self):
        device = BlockDevice(block_size=256)
        with pytest.raises(DeviceError):
            device.read_block(0)

    def test_read_never_written_block_fails(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        with pytest.raises(DeviceError):
            device.read_block(block)

    def test_oversized_write_fails(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        with pytest.raises(DeviceError):
            device.write_block(block, b"x" * 257)

    def test_full_block_write_allowed(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"x" * 256)
        assert len(device.read_block(block)) == 256

    def test_freed_block_unreadable(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"data")
        device.free_blocks([block])
        with pytest.raises(DeviceError):
            device.read_block(block)

    def test_free_is_not_counted_io(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"data")
        before = device.stats.total_ios
        device.free_blocks([block])
        assert device.stats.total_ios == before


class TestAccounting:
    def test_reads_and_writes_counted_by_category(self):
        device = BlockDevice(block_size=256)
        a = device.allocate(2)
        device.write_block(a, b"1", "alpha")
        device.write_block(a + 1, b"2", "alpha")
        device.read_block(a, "beta")
        summary = device.stats.summary()
        assert summary["alpha"]["writes"] == 2
        assert summary["alpha"]["reads"] == 0
        assert summary["beta"]["reads"] == 1

    def test_sequential_detection_within_category(self):
        device = BlockDevice(block_size=256)
        start = device.allocate(4)
        for offset in range(4):
            device.write_block(start + offset, b"x", "stream")
        counters = device.stats.by_category["stream"]
        # First access of a category counts as sequential.
        assert counters.seq_writes == 4

    def test_interleaved_categories_stay_sequential(self):
        """Two sequential streams must not charge each other seeks."""
        device = BlockDevice(block_size=256)
        a = device.allocate(3)
        b = device.allocate(3)
        for offset in range(3):
            device.write_block(a + offset, b"x", "one")
            device.write_block(b + offset, b"y", "two")
        assert device.stats.by_category["one"].seq_writes == 3
        assert device.stats.by_category["two"].seq_writes == 3

    def test_backward_access_is_random(self):
        device = BlockDevice(block_size=256)
        start = device.allocate(3)
        for offset in range(3):
            device.write_block(start + offset, b"x", "s")
        device.read_block(start + 2, "s")  # jump: not previous + 1
        device.read_block(start, "s")  # backward: random
        counters = device.stats.by_category["s"]
        assert counters.seq_reads == 0
        assert counters.reads == 2

    def test_snapshot_differencing(self):
        device = BlockDevice(block_size=256)
        block = device.allocate(2)
        device.write_block(block, b"x", "phase1")
        snapshot = device.stats.snapshot()
        device.write_block(block + 1, b"y", "phase2")
        delta = device.stats.since(snapshot)
        assert delta.total_ios == 1
        assert delta.category_total("phase2") == 1
        assert delta.category_total("phase1") == 0

    def test_bytes_to_blocks(self):
        device = BlockDevice(block_size=256)
        assert device.bytes_to_blocks(0) == 0
        assert device.bytes_to_blocks(1) == 1
        assert device.bytes_to_blocks(256) == 1
        assert device.bytes_to_blocks(257) == 2


class TestCostModel:
    def test_io_seconds_charges_seeks_for_random(self):
        model = CostModel(seek_seconds=0.01, transfer_seconds=0.001)
        sequential_only = model.io_seconds(sequential=10, random=0)
        with_seeks = model.io_seconds(sequential=0, random=10)
        assert with_seeks > sequential_only
        assert sequential_only == pytest.approx(0.010)
        assert with_seeks == pytest.approx(0.110)

    def test_cpu_seconds(self):
        model = CostModel(compare_seconds=1e-6, token_seconds=1e-7)
        assert model.cpu_seconds(1000, 0) == pytest.approx(1e-3)
        assert model.cpu_seconds(0, 1000) == pytest.approx(1e-4)

    def test_elapsed_combines_io_and_cpu(self):
        device = BlockDevice(block_size=256)
        block = device.allocate()
        device.write_block(block, b"x", "w")
        device.stats.record_comparisons(1000)
        assert device.stats.elapsed_seconds() == pytest.approx(
            device.stats.io_seconds() + device.stats.cpu_seconds()
        )

    def test_simulated_time_monotone_in_ios(self):
        device = BlockDevice(block_size=256)
        blocks = device.allocate(10)
        times = []
        for offset in range(10):
            device.write_block(blocks + offset, b"x", "w")
            times.append(device.stats.elapsed_seconds())
        assert times == sorted(times)
        assert times[0] > 0
