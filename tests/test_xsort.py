"""Tests for the XSort single-level baseline (related work, Section 2)."""

import pytest

from repro.baselines import sort_element, xsort
from repro.core import nexsort
from repro.errors import SortSpecError
from repro.generators import figure1_d1, figure1_spec
from repro.io import BlockDevice, RunStore
from repro.keys import ByText, SortSpec
from repro.xml import Document, Element

from .conftest import flat_tree, random_tree


def fresh_store(block_size=256):
    device = BlockDevice(block_size=block_size)
    return device, RunStore(device)


class TestSingleLevelSemantics:
    def test_sorts_only_the_target_level(self):
        _device, store = fresh_store()
        spec = figure1_spec()
        doc = Document.from_element(store, figure1_d1())
        result, report = xsort(
            doc, spec, "company/region/branch", memory_blocks=8
        )
        tree = result.to_element()
        # Durham's employees are now ordered by ID...
        durham = [
            b
            for r in tree.find_all("region")
            for b in r.find_all("branch")
            if b.attrs.get("name") == "Durham"
        ][0]
        ids = [e.attrs["ID"] for e in durham.find_all("employee")]
        assert ids == ["323", "454"]
        # ...but the regions themselves kept their document order (NE, AC).
        assert [r.attrs["name"] for r in tree.find_all("region")] == [
            "NE",
            "AC",
        ]
        # And the matched employee's leaves are untouched.
        emp = [e for e in durham.find_all("employee") if e.children][0]
        assert [c.tag for c in emp.children] == ["name", "phone"]
        assert report.target_lists_sorted == 2  # Durham and Atlanta

    def test_root_target_sorts_top_level_only(self, spec):
        _device, store = fresh_store()
        tree = Element.parse(
            '<r><a name="2"><x name="9"/><x name="1"/></a><a name="1"/></r>'
        )
        doc = Document.from_element(store, tree)
        result, _report = xsort(doc, spec, "", memory_blocks=8)
        out = result.to_element()
        assert [c.attrs["name"] for c in out.children] == ["1", "2"]
        deep = [c for c in out.children if c.children][0]
        # One level only: the x's keep document order.
        assert [c.attrs["name"] for c in deep.children] == ["9", "1"]

    def test_unmatched_path_is_identity(self, spec):
        _device, store = fresh_store()
        tree = random_tree(3, depth=3, max_fanout=4)
        doc = Document.from_element(store, tree)
        result, report = xsort(doc, spec, "nope/nothing", memory_blocks=8)
        assert result.to_element() == tree
        assert report.target_lists_sorted == 0

    def test_content_preserved(self, spec):
        _device, store = fresh_store()
        tree = random_tree(7, depth=4, max_fanout=5, text_leaves=True)
        doc = Document.from_element(store, tree)
        result, _report = xsort(doc, spec, "e", memory_blocks=8)
        assert (
            result.to_element().unordered_canonical()
            == tree.unordered_canonical()
        )

    def test_matches_depth_limited_oracle_on_root_target(self, spec):
        _device, store = fresh_store()
        tree = random_tree(9, depth=4, max_fanout=5)
        doc = Document.from_element(store, tree)
        result, _report = xsort(doc, spec, "", memory_blocks=8)
        assert result.to_element() == sort_element(
            tree, spec, depth_limit=1
        )

    def test_texts_of_target_preserved(self, spec):
        _device, store = fresh_store()
        tree = Element.parse(
            '<r>hello<a name="2"/><a name="1"/></r>'
        )
        doc = Document.from_element(store, tree)
        result, _report = xsort(doc, spec, "", memory_blocks=8)
        assert result.to_element().text == "hello"


class TestLargeChildLists:
    def test_external_path_used_for_big_lists(self, spec):
        _device, store = fresh_store()
        tree = flat_tree(400, pad=16)
        doc = Document.from_element(store, tree)
        result, report = xsort(doc, spec, "", memory_blocks=4)
        assert report.initial_runs > 1
        names = [c.attrs["name"] for c in result.to_element().children]
        assert names == sorted(names)

    def test_xsort_cheaper_than_nexsort(self, spec):
        """'Obviously, XSort sorts less, and should complete in less
        time than NEXSORT.'"""
        tree = random_tree(11, depth=5, max_fanout=5, pad=12)
        _d1, store1 = fresh_store()
        doc1 = Document.from_element(store1, tree)
        _result, xreport = xsort(doc1, spec, "e", memory_blocks=8)
        _d2, store2 = fresh_store()
        doc2 = Document.from_element(store2, tree)
        _result, nreport = nexsort(doc2, spec, memory_blocks=8)
        assert xreport.simulated_seconds < nreport.simulated_seconds


class TestValidation:
    def test_subtree_spec_rejected(self):
        from repro.baselines import XSorter

        with pytest.raises(SortSpecError):
            XSorter(SortSpec(default=ByText()), "a", 8)

    def test_too_little_memory_rejected(self, spec):
        from repro.baselines import XSorter

        with pytest.raises(SortSpecError):
            XSorter(spec, "a", 2)
