"""Test package for the NEXSORT reproduction."""
