"""Tests for the output phase: expanding the tree of sorted runs."""

from repro.baselines import sort_element
from repro.core import nexsort
from repro.io import BlockDevice, RunStore
from repro.xml import Document

from .conftest import chain_tree, random_tree


def run(tree, spec, memory_blocks=8, threshold_bytes=None):
    device = BlockDevice(block_size=256)
    store = RunStore(device)
    doc = Document.from_element(store, tree)
    result, report = nexsort(
        doc,
        spec,
        memory_blocks=memory_blocks,
        threshold_bytes=threshold_bytes,
    )
    return device, result, report


class TestRunTreeExpansion:
    def test_small_threshold_builds_deep_run_tree(self, spec):
        """Many collapses produce nested pointers; output flattens them."""
        tree = random_tree(2, depth=6, max_fanout=4, pad=12)
        _device, result, report = run(tree, spec, threshold_bytes=96)
        assert report.x > 5
        assert result.to_element() == sort_element(tree, spec)

    def test_output_copies_records_not_pointers(self, spec):
        from repro.xml.tokens import RunPointer

        tree = random_tree(3, depth=5, max_fanout=5, pad=8)
        _device, result, report = run(tree, spec, threshold_bytes=128)
        assert report.x > 1
        tokens = list(result.iter_tokens("export"))
        assert not any(isinstance(t, RunPointer) for t in tokens)

    def test_lemma_4_12_run_read_accounting(self, spec):
        """Run-block reads = total run blocks + pointer resumptions.

        Each of the x-1 non-root pointers causes at most one extra read of
        the block where traversal resumes, so run reads are bounded by
        run_blocks + (x - 1) and can never be below run_blocks.
        """
        tree = random_tree(5, depth=6, max_fanout=5, pad=12)
        _device, _result, report = run(tree, spec, threshold_bytes=128)
        run_reads = report.output_stats.category_total("run_read")
        assert run_reads >= report.run_blocks_written - report.x
        assert run_reads <= report.run_blocks_written + report.x

    def test_output_blocks_match_input_scale(self, spec):
        tree = random_tree(6, depth=5, max_fanout=5, pad=12)
        _device, result, report = run(tree, spec)
        output_writes = report.output_stats.category_total("output")
        assert output_writes == result.block_count

    def test_intermediate_runs_freed_after_output(self, spec):
        device, result, report = run(
            random_tree(7, depth=5, max_fanout=5, pad=12),
            spec,
            threshold_bytes=128,
        )
        # Only the input document and the output document remain.
        from repro.io import BlockDevice

        expected = result.block_count + report.input_blocks
        assert device.occupied_blocks <= expected + 2


class TestOutputLocationStack:
    def test_deep_nesting_spills_output_stack(self, spec):
        """A chain collapsed at tiny thresholds nests runs deeply enough
        to overflow the one-block output-location stack (Lemma 4.13)."""
        tree = chain_tree(600)
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        result, report = nexsort(
            doc, spec, memory_blocks=6, threshold_bytes=64
        )
        assert report.x > 50
        assert report.output_stack_page_outs > 0
        assert report.output_stack_page_ins > 0
        assert result.to_element() == sort_element(tree, spec)

    def test_shallow_documents_do_not_spill(self, spec):
        tree = random_tree(8, depth=3, max_fanout=4)
        _device, _result, report = run(tree, spec)
        assert report.output_stack_page_outs == 0
