"""End-to-end integration tests mirroring the paper's experimental claims
at miniature scale (the full-size versions live in benchmarks/)."""

from repro.analysis import merge_sort_passes
from repro.baselines import external_merge_sort
from repro.core import nexsort
from repro.generators import (
    figure1_spec,
    ibm_style_events,
    level_fanout_events,
    payroll_events,
    personnel_events,
)
from repro.io import BlockDevice, CostModel, RunStore
from repro.keys import ByAttribute, SortSpec
from repro.merge import nested_loop_merge, structural_merge
from repro.xml import Document

SPEC = SortSpec(default=ByAttribute("name"))


def load(events, block_size=512):
    device = BlockDevice(block_size=block_size)
    store = RunStore(device)
    return Document.from_events(store, events)


class TestMemorySweep:
    """Miniature Figure 5: NEXSORT is less memory-sensitive."""

    def test_nexsort_less_memory_sensitive_than_merge_sort(self):
        """Paper: 'As memory decreases, NEXSORT running time increases
        only marginally.  In contrast, external merge sort running time
        increases more dramatically.'  The paper's memory range (4-32 MB
        of 64 KB blocks) keeps NEXSORT's subtree sorts internal; the
        scaled analogue is 16-96 blocks."""
        events = lambda: level_fanout_events(  # noqa: E731
            [11, 11, 11, 5], seed=5, pad_bytes=24
        )
        nexsort_times = []
        merge_times = []
        for memory in (16, 24, 48, 96):
            doc = load(events())
            _out, report = nexsort(doc, SPEC, memory_blocks=memory)
            nexsort_times.append(report.simulated_seconds)
            doc = load(events())
            _out, merge_report = external_merge_sort(
                doc, SPEC, memory_blocks=memory
            )
            merge_times.append(merge_report.simulated_seconds)
        nexsort_spread = nexsort_times[0] / nexsort_times[-1]
        merge_spread = merge_times[0] / merge_times[-1]
        assert merge_spread > nexsort_spread

    def test_nexsort_beats_merge_sort_on_hierarchical_input(self):
        """The headline: merge sort 13-27% slower on hierarchical input."""
        doc = load(level_fanout_events([11, 11, 11, 5], seed=4, pad_bytes=24))
        _out, nreport = nexsort(doc, SPEC, memory_blocks=24)
        doc = load(level_fanout_events([11, 11, 11, 5], seed=4, pad_bytes=24))
        _out, mreport = external_merge_sort(doc, SPEC, memory_blocks=24)
        assert nreport.simulated_seconds < mreport.simulated_seconds


class TestInputSizeSweep:
    """Miniature Figure 6: NEXSORT linear, merge sort pass jumps."""

    def test_nexsort_scales_linearly(self):
        times = []
        sizes = []
        for fanouts in ([10, 10, 10], [10, 10, 20], [10, 20, 20]):
            doc = load(level_fanout_events(fanouts, seed=2, pad_bytes=48))
            sizes.append(doc.element_count)
            _out, report = nexsort(doc, SPEC, memory_blocks=8)
            times.append(report.simulated_seconds)
        # Time per element stays roughly constant (within 2x).
        rates = [t / n for t, n in zip(times, sizes)]
        assert max(rates) < 2.0 * min(rates)

    def test_merge_sort_cost_model_predicts_pass_jumps(self):
        """The analytic pass model matches the implementation."""
        for fanouts, memory in (([30], 4), ([20, 20], 4), ([12, 35], 6)):
            doc = load(level_fanout_events(fanouts, seed=3, pad_bytes=48))
            _out, report = external_merge_sort(
                doc, SPEC, memory_blocks=memory
            )
            B = max(1, doc.element_count // doc.block_count)
            predicted = merge_sort_passes(
                doc.element_count, B, memory * B
            )
            assert abs(report.total_passes - predicted) <= 1


class TestTreeShapeSweep:
    """Miniature Figure 7: flat inputs favour merge sort, hierarchy
    flips the outcome once fan-out drops."""

    def test_flat_input_favours_merge_sort(self):
        doc = load(level_fanout_events([1500], seed=5, pad_bytes=24))
        _out, nreport = nexsort(doc, SPEC, memory_blocks=8)
        doc = load(level_fanout_events([1500], seed=5, pad_bytes=24))
        _out, mreport = external_merge_sort(doc, SPEC, memory_blocks=8)
        assert mreport.simulated_seconds < nreport.simulated_seconds

    def test_hierarchical_input_favours_nexsort(self):
        doc = load(level_fanout_events([11, 11, 11], seed=5, pad_bytes=24))
        _out, nreport = nexsort(doc, SPEC, memory_blocks=24)
        doc = load(level_fanout_events([11, 11, 11], seed=5, pad_bytes=24))
        _out, mreport = external_merge_sort(doc, SPEC, memory_blocks=24)
        assert nreport.simulated_seconds < mreport.simulated_seconds

    def test_both_produce_identical_output(self):
        doc = load(level_fanout_events([8, 8, 8], seed=6))
        n_out, _ = nexsort(doc, SPEC, memory_blocks=8)
        m_out, _ = external_merge_sort(doc, SPEC, memory_blocks=8)
        assert n_out.to_element() == m_out.to_element()


class TestMergePipeline:
    """Example 1.1 at scale: sort + single-pass merge beats nested loop."""

    def test_sort_merge_pipeline_beats_nested_loop(self):
        spec = figure1_spec()
        device = BlockDevice(block_size=512)
        store = RunStore(device)
        left = Document.from_events(store, personnel_events(3, 3, 14))
        right = Document.from_events(store, payroll_events(3, 3, 14))

        before = device.stats.snapshot()
        sorted_left, _ = nexsort(left, spec, memory_blocks=8)
        sorted_right, _ = nexsort(right, spec, memory_blocks=8)
        _merged, _mreport = structural_merge(sorted_left, sorted_right, spec)
        pipeline_ios = device.stats.since(before).total_ios

        before = device.stats.snapshot()
        _naive, _nreport = nested_loop_merge(left, right, spec)
        naive_ios = device.stats.since(before).total_ios
        assert naive_ios > pipeline_ios

    def test_merge_outputs_agree(self):
        spec = figure1_spec()
        device = BlockDevice(block_size=512)
        store = RunStore(device)
        left = Document.from_events(store, personnel_events(2, 2, 8))
        right = Document.from_events(store, payroll_events(2, 2, 8))
        sorted_left, _ = nexsort(left, spec, memory_blocks=8)
        sorted_right, _ = nexsort(right, spec, memory_blocks=8)
        merged, _ = structural_merge(sorted_left, sorted_right, spec)
        naive, _ = nested_loop_merge(left, right, spec)
        assert (
            merged.to_element().unordered_canonical()
            == naive.to_element().unordered_canonical()
        )


class TestCostModelKnobs:
    def test_custom_cost_model_changes_simulated_time_only(self):
        slow_disk = CostModel(seek_seconds=0.05, transfer_seconds=0.005)
        device = BlockDevice(block_size=512, cost_model=slow_disk)
        store = RunStore(device)
        doc = Document.from_events(
            store, ibm_style_events(4, 6, seed=9, pad_bytes=48)
        )
        _out, slow_report = nexsort(doc, SPEC, memory_blocks=8)

        device = BlockDevice(block_size=512)
        store = RunStore(device)
        doc = Document.from_events(
            store, ibm_style_events(4, 6, seed=9, pad_bytes=48)
        )
        _out, fast_report = nexsort(doc, SPEC, memory_blocks=8)
        assert slow_report.total_ios == fast_report.total_ios
        assert (
            slow_report.simulated_seconds > fast_report.simulated_seconds
        )
