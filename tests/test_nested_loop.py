"""Tests for the nested-loop merge baseline."""

import pytest

from repro.core import nexsort
from repro.errors import MergeError
from repro.generators import (
    figure1_d1,
    figure1_d2,
    figure1_merged,
    figure1_spec,
    payroll_events,
    personnel_events,
)
from repro.io import BlockDevice, RunStore
from repro.keys import ByText, SortSpec
from repro.merge import nested_loop_merge, structural_merge
from repro.xml import CompactionConfig, Document, Element


def fresh_store():
    device = BlockDevice(block_size=256)
    return device, RunStore(device)


class TestCorrectness:
    def test_figure1_content(self):
        _device, store = fresh_store()
        spec = figure1_spec()
        left = Document.from_element(store, figure1_d1())
        right = Document.from_element(store, figure1_d2())
        merged, _report = nested_loop_merge(left, right, spec)
        assert (
            merged.to_element().unordered_canonical()
            == figure1_merged().unordered_canonical()
        )

    def test_matches_structural_merge_content(self):
        _device, store = fresh_store()
        spec = figure1_spec()
        left = Document.from_events(store, personnel_events(3, 3, 8))
        right = Document.from_events(store, payroll_events(3, 3, 8))
        naive, _ = nested_loop_merge(left, right, spec)

        sorted_left, _ = nexsort(left, spec, memory_blocks=8)
        sorted_right, _ = nexsort(right, spec, memory_blocks=8)
        smart, _ = structural_merge(sorted_left, sorted_right, spec)
        assert (
            naive.to_element().unordered_canonical()
            == smart.to_element().unordered_canonical()
        )

    def test_works_on_unsorted_inputs(self, spec):
        _device, store = fresh_store()
        left = Document.from_element(
            store, Element.parse('<r><a name="2">L</a><a name="1"/></r>')
        )
        right = Document.from_element(
            store, Element.parse('<r><a name="1">R</a><a name="3"/></r>')
        )
        merged, _report = nested_loop_merge(left, right, spec)
        names = sorted(
            c.attrs["name"] for c in merged.to_element().children
        )
        assert names == ["1", "2", "3"]

    def test_right_only_text_preserved(self, spec):
        _device, store = fresh_store()
        left = Document.from_element(
            store, Element.parse('<r name="k"><a name="1"/></r>')
        )
        right = Document.from_element(
            store, Element.parse('<r name="k">righttext</r>')
        )
        merged, _report = nested_loop_merge(left, right, spec)
        assert merged.to_element().text == "righttext"


class TestIOPattern:
    def test_rescans_grow_with_left_children(self):
        """The naive pattern: one right-region scan per left child."""
        spec = figure1_spec()
        rescans = []
        for employees in (4, 8, 16):
            _device, store = fresh_store()
            left = Document.from_events(
                store, personnel_events(2, 2, employees)
            )
            right = Document.from_events(
                store, payroll_events(2, 2, employees)
            )
            _merged, report = nested_loop_merge(left, right, spec)
            rescans.append(report.right_rescans)
        assert rescans == sorted(rescans)
        assert rescans[-1] > rescans[0]

    def test_io_blowup_versus_structural(self):
        """The motivating comparison: naive I/O far exceeds sorted merge."""
        spec = figure1_spec()
        _device, store = fresh_store()
        left = Document.from_events(store, personnel_events(3, 3, 12))
        right = Document.from_events(store, payroll_events(3, 3, 12))
        _naive, naive_report = nested_loop_merge(left, right, spec)

        sorted_left, _ = nexsort(left, spec, memory_blocks=8)
        sorted_right, _ = nexsort(right, spec, memory_blocks=8)
        _smart, smart_report = structural_merge(
            sorted_left, sorted_right, spec
        )
        assert naive_report.total_ios > 3 * smart_report.total_ios


class TestValidation:
    def test_compacted_documents_rejected(self, spec):
        _device, store = fresh_store()
        left = Document.from_element(
            store, Element.parse("<r/>"), CompactionConfig()
        )
        right = Document.from_element(store, Element.parse("<r/>"))
        with pytest.raises(MergeError):
            nested_loop_merge(left, right, spec)

    def test_subtree_spec_rejected(self):
        _device, store = fresh_store()
        left = Document.from_element(store, Element.parse("<r/>"))
        right = Document.from_element(store, Element.parse("<r/>"))
        with pytest.raises(MergeError):
            nested_loop_merge(left, right, SortSpec(default=ByText()))

    def test_mismatched_roots_rejected(self, spec):
        _device, store = fresh_store()
        left = Document.from_element(store, Element.parse("<a/>"))
        right = Document.from_element(store, Element.parse("<b/>"))
        with pytest.raises(MergeError):
            nested_loop_merge(left, right, spec)
