"""Compressed runs (ISSUE 10): codec, store integration, identity.

Bottom-up like the module itself: the container-split codec round-trips
byte-exactly and fails typed on corruption; the run store writes and
reads compressed runs interchangeably with plain ones (same logical
offsets, same resume points); sorts produce bit-identical output with
compression on, with only the byte/CPU counters moving; the fault and
service layers compose with compression unchanged.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.merge_sort import external_merge_sort
from repro.core.nexsort import nexsort
from repro.errors import RunCodecError, SortSpecError
from repro.io import BlockDevice, CompressionConfig, RunStore
from repro.io.compress import (
    decode_document_wire,
    decode_records,
    encode_document_wire,
    encode_records,
)
from repro.keys import ByAttribute, SortSpec
from repro.merge.engine import MergeOptions
from repro.service.scheduler import Scheduler, run_solo
from repro.service.workload import WorkloadSpec
from repro.io.lease import ResourcePool
from repro.xml.codec import encode_varint, read_varint
from repro.xml.document import Document
from repro.generators.level_fanout import level_fanout_events

from .conftest import flat_tree, store_tree

SPEC = SortSpec(default=ByAttribute("name"))


def _records(count, seed=3):
    """Mixed structure/text-ish payloads of varying lengths."""
    out = []
    for index in range(count):
        if index % 3 == 0:
            out.append(b"text value %d padding" % (index * seed))
        else:
            out.append(bytes([index % 7]) + b"\x01\x02" * (index % 11 + 1))
    return out


class TestCodec:
    @pytest.mark.parametrize("codec", ["container", "zlib"])
    def test_round_trip(self, codec):
        records = _records(40)
        blob = encode_records(records, False, codec)
        assert decode_records(blob) == records

    def test_embedded_keys_round_trip(self):
        records = [
            encode_varint(len(key)) + key + payload
            for key, payload in zip(
                [b"k%03d" % i for i in range(20)], _records(20)
            )
        ]
        blob = encode_records(records, True, "container")
        assert decode_records(blob) == records

    def test_empty_group(self):
        assert decode_records(encode_records([], False, "container")) == []

    def test_unknown_codec_rejected(self):
        with pytest.raises(RunCodecError):
            encode_records([b"x"], False, "snappy")

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: b"",  # empty
            lambda b: b[1:],  # lost magic
            lambda b: b[:10],  # truncated containers
            lambda b: b + b"\x00",  # trailing garbage
            lambda b: b[:1] + bytes([99]) + b[2:],  # unknown codec id
            lambda b: b[:-3] + bytes(
                (b[-3] ^ 0xFF,)
            ) + b[-2:],  # flipped payload byte -> crc mismatch
        ],
    )
    def test_corruption_is_typed(self, mutate):
        blob = encode_records(_records(12), False, "container")
        with pytest.raises(RunCodecError):
            decode_records(mutate(blob))

    @given(values=st.lists(st.integers(min_value=0, max_value=2**40)))
    @settings(max_examples=50, deadline=None)
    def test_varint_round_trip_property(self, values):
        # Satellite 1: the one shared varint implementation round-trips
        # any concatenated sequence at any boundary.
        blob = b"".join(encode_varint(v) for v in values)
        pos = 0
        decoded = []
        while pos < len(blob):
            value, pos = read_varint(blob, pos)
            decoded.append(value)
        assert decoded == values


def make_store(block_size=256, compression=None):
    store = RunStore(BlockDevice(block_size=block_size))
    if compression is not None:
        store.compression = compression
    return store


class TestCompressedRuns:
    def test_round_trip_and_logical_offsets(self):
        plain = make_store()
        packed = make_store(compression=CompressionConfig())
        records = _records(120)

        handles = []
        for store in (plain, packed):
            writer = store.create_writer("run_write")
            writer.write_records(records)
            handles.append(writer.finish())
        plain_handle, packed_handle = handles

        # Logical geometry is interchangeable: same framed stream.
        assert packed_handle.stream_bytes == plain_handle.stream_bytes
        assert packed_handle.record_count == plain_handle.record_count
        assert packed_handle.codec == "container"
        assert len(packed_handle.block_ids) < len(plain_handle.block_ids)

        reader = packed.open_reader(packed_handle)
        assert list(reader) == records

    def test_resume_mid_run_matches_plain(self):
        records = _records(90)
        plain = make_store()
        packed = make_store(compression=CompressionConfig())
        writers = (
            plain.create_writer("run_write"),
            packed.create_writer("run_write"),
        )
        for writer in writers:
            writer.write_records(records)
        plain_handle, packed_handle = (w.finish() for w in writers)

        # Walk the plain reader halfway, capture its resume offset, and
        # reopen *the compressed run* at that offset: same tail.
        reader = plain.open_reader(plain_handle)
        for _ in range(45):
            reader.read_record()
        offset = reader.tell()
        resumed = packed.open_reader(packed_handle, offset=offset)
        assert list(resumed) == records[45:]

    def test_write_record_matches_write_records(self):
        # Satellite 2: both entry points share one framing path, so a
        # record-at-a-time run is byte-identical to a batched one -
        # compressed and plain alike.
        records = _records(64)
        for compression in (None, CompressionConfig()):
            stores = (
                make_store(compression=compression),
                make_store(compression=compression),
            )
            one = stores[0].create_writer("run_write")
            for record in records:
                one.write_record(record)
            batched = stores[1].create_writer("run_write")
            batched.write_records(records)
            a, b = one.finish(), batched.finish()
            assert a.stream_bytes == b.stream_bytes
            blocks_a = [
                stores[0].device.read_block(block) for block in a.block_ids
            ]
            blocks_b = [
                stores[1].device.read_block(block) for block in b.block_ids
            ]
            assert blocks_a == blocks_b

    def test_corrupt_block_raises_typed_error_naming_the_block(self):
        # Satellite 3: flip a byte inside a stored compressed segment.
        store = make_store(compression=CompressionConfig())
        writer = store.create_writer("run_write")
        writer.write_records(_records(80))
        handle = writer.finish()
        victim = handle.block_ids[0]
        raw = bytearray(store.device.read_block(victim))
        raw[5] ^= 0xFF
        store.device._blocks[victim] = bytes(raw)

        with pytest.raises(RunCodecError) as info:
            list(store.open_reader(handle))
        assert info.value.run_id == handle.run_id
        assert info.value.block == victim
        assert str(victim) in str(info.value)

    def test_uncompressed_categories_stay_plain(self):
        store = make_store(compression=CompressionConfig())
        writer = store.create_writer("output")
        writer.write_records(_records(10))
        handle = writer.finish()
        assert handle.codec is None
        assert not handle.segments

    def test_capacity_requires_codec(self):
        with pytest.raises(SortSpecError):
            MergeOptions(compress_capacity=True)
        with pytest.raises(SortSpecError):
            MergeOptions(compress="snappy")


def _digest(document):
    return hashlib.sha256(document.to_string().encode()).hexdigest()


def _sort(algorithm, compress=None, capacity=False, memory=10):
    store = make_store(block_size=256)
    document = store_tree(store, flat_tree(260, seed=4))
    options = (
        MergeOptions()
        if compress is None
        else MergeOptions(compress=compress, compress_capacity=capacity)
    )
    if algorithm == "nexsort":
        output, report = nexsort(
            document, SPEC, memory_blocks=memory, merge_options=options
        )
    else:
        output, report = external_merge_sort(
            document, SPEC, memory_blocks=memory, merge_options=options
        )
    return _digest(output), report


class TestSortIdentity:
    @pytest.mark.parametrize("algorithm", ["nexsort", "merge_sort"])
    def test_digest_comparisons_tokens_identical(self, algorithm):
        base_digest, base = _sort(algorithm)
        for codec in ("container", "zlib"):
            digest, report = _sort(algorithm, compress=codec)
            assert digest == base_digest
            assert report.stats.comparisons == base.stats.comparisons
            assert report.stats.tokens == base.stats.tokens
            # The honest part: bytes really moved.
            assert report.stats.compress_stored_bytes > 0
            assert (
                report.stats.compress_stored_bytes
                < report.stats.compress_raw_bytes
            )

    @pytest.mark.parametrize("algorithm", ["nexsort", "merge_sort"])
    def test_off_is_bit_identical(self, algorithm):
        # Compression off emits no compression counters at all, so
        # pre-existing traces and goldens compare byte-for-byte.
        _digest_, report = _sort(algorithm)
        totals = report.stats.counter_totals()
        assert "compress_raw_bytes" not in totals
        assert report.stats.compress_raw_bytes == 0

    def test_capacity_mode_same_output_fewer_runs(self):
        base_digest, base = _sort("merge_sort", memory=6)
        digest, report = _sort(
            "merge_sort", compress="container", capacity=True, memory=6
        )
        assert digest == base_digest
        assert report.initial_runs < base.initial_runs


class TestFaultInteraction:
    def test_torn_segment_write_recovers_through_retry(self):
        # Satellite 3: compressed segments go to disk as one vectored
        # multi-block write - exactly the shape torn faults target.
        # Incompressible records keep the blob above one block so the
        # tear actually lands, and the retrying device must absorb it
        # and leave a readable, byte-exact run behind.
        import random

        from repro.faults import FaultInjector, FaultPlan, RetryingDevice

        rng = random.Random(11)
        records = [rng.randbytes(200) for _ in range(60)]

        device = BlockDevice(block_size=256)
        retrier = RetryingDevice(
            FaultInjector(device, FaultPlan.parse("torn@1"))
        )
        store = RunStore(retrier)
        store.compression = CompressionConfig()
        writer = store.create_writer("run_write")
        writer.write_records(records)
        handle = writer.finish()

        assert retrier.retry_stats.retries >= 1
        assert device.stats.penalty_seconds > 0
        assert list(store.open_reader(handle)) == records

    def test_faulty_sort_with_compression_is_bit_identical(self):
        # The checkpoint/retry path end to end: a chaos run with
        # compressed runs still matches the fault-free compressed
        # golden - digest and every counter except the penalty clock.
        spec = WorkloadSpec.parse(
            "jobs=1;shape=6x6x6;memory=16"
        ).jobs()[0]
        options = MergeOptions(compress="container")
        clean = run_solo(spec, merge_options=options, block_size=512)
        faulty = run_solo(
            spec,
            merge_options=options,
            block_size=512,
            fault_plan="read@3;write@5",
            retries=2,
        )
        assert faulty.digest == clean.digest
        assert faulty.counters["penalty_seconds"] > 0
        moved = {"penalty_seconds", "seconds"}
        for key, value in clean.counters.items():
            if key not in moved:
                assert faulty.counters[key] == value, key


class TestWireFormat:
    def test_wire_round_trip_is_exact(self):
        events = list(level_fanout_events([5, 5, 5], seed=2, pad_bytes=8))
        blob = encode_document_wire(events)
        assert decode_document_wire(blob) == events
        assert len(blob) < sum(
            len(getattr(t, "text", "") or "") + 8 for t in events
        )

    def test_wire_blob_corruption_is_typed(self):
        blob = encode_document_wire(level_fanout_events([4, 4], seed=1))
        with pytest.raises(RunCodecError):
            decode_document_wire(blob[:-4])
        with pytest.raises(RunCodecError):
            decode_document_wire(b"XXXX" + blob[4:])

    def test_wire_jobs_match_plain_jobs(self):
        plain = WorkloadSpec.parse("jobs=2;seed=3;shape=5x5x5").jobs()
        wired = WorkloadSpec.parse(
            "jobs=2;seed=3;shape=5x5x5;wire=1"
        ).jobs()
        rp = Scheduler(ResourcePool(48, block_size=512)).run(plain)
        rw = Scheduler(ResourcePool(48, block_size=512)).run(wired)
        moved = ("cpu_seconds", "seconds", "decompress")
        for a, b in zip(rp.results, rw.results):
            assert a.digest == b.digest
            assert b.wire_bytes is not None
            assert b.wire_bytes < b.wire_raw_bytes
            assert a.wire_bytes is None
            for key, value in a.counters.items():
                if not key.startswith(moved):
                    assert b.counters[key] == value, key

    def test_wire_solo_matches_scheduled(self):
        wired = WorkloadSpec.parse("jobs=1;shape=5x5x5;wire=1").jobs()
        scheduled = Scheduler(
            ResourcePool(48, block_size=512)
        ).run(wired).results[0]
        solo = run_solo(wired[0], block_size=512)
        assert solo.digest == scheduled.digest
        assert solo.counters == scheduled.counters
        assert solo.wire_bytes == scheduled.wire_bytes
