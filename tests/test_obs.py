"""Observability subsystem: span tracing, sinks, diff, and fidelity.

Three layers of guarantees:

* structural - span trees are well-formed (strict nesting, monotone
  simulated timestamps, non-negative self deltas) and the root spans'
  deltas sum to the whole trace's totals, on random documents across
  the full :class:`~repro.merge.engine.MergeOptions` grid;
* fidelity - tracing never perturbs the traced sort: with a tracer
  attached, I/O totals and output bytes are bit-identical to the
  untraced run, which itself reproduces the seed's Figure-5 goldens;
* surface - the CLI writes valid Chrome ``trace_event`` JSON whose
  top-level span deltas sum to the global counters (the acceptance
  criterion), ``repro trace diff`` reports a trace identical to itself
  and flags injected deltas, and JSONL and Chrome renderings of the
  same run compare identical.
"""

import io
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import external_merge_sort
from repro.cli import main
from repro.core import nexsort
from repro.errors import TraceError
from repro.generators import level_fanout_events
from repro.io import BlockDevice, RunStore
from repro.keys import ByAttribute, SortSpec
from repro.merge import MergeOptions
from repro.obs import (
    Tracer,
    diff_files,
    load_trace,
    maybe_span,
    render_tree,
    write_chrome_trace,
    write_jsonl,
)
from repro.xml import Document, Element

SPEC = SortSpec(default=ByAttribute("name"))

#: The full engine-knob grid; every combination must trace cleanly.
OPTION_GRID = [
    MergeOptions(run_formation=formation, merge_kernel=kernel,
                 embedded_keys=embedded)
    for formation in ("load-sort", "replacement-selection")
    for kernel in ("heap", "loser-tree")
    for embedded in (False, True)
]

#: Figure-5 totals of the unpooled seed (see tests/test_bufferpool.py):
#: the traced run must reproduce them exactly.
SEED_GOLDEN_M24 = (4275, 7762)


def fig5_events():
    return level_fanout_events([11, 11, 11, 5], seed=5, pad_bytes=24)


def small_doc(store):
    return Document.from_events(
        store, level_fanout_events([4, 3, 3], seed=3, pad_bytes=16)
    )


@st.composite
def document_tree(draw, max_depth=3):
    """Random documents with duplicate-prone keys."""

    def node(depth):
        name = draw(st.integers(min_value=0, max_value=20))
        children = []
        if depth < max_depth:
            count = draw(st.integers(min_value=0, max_value=3))
            children = [node(depth + 1) for _ in range(count)]
        return Element("n", {"name": f"k{name:03d}"}, "", children)

    return node(1)


def assert_well_formed(trace):
    """Structural invariants of a finished trace."""
    for span, _depth in trace.walk():
        assert not span.is_open
        assert span.delta is not None
        assert "truncated" not in span.attrs
        assert span.end_seconds >= span.start_seconds
        # Children tile disjoint sub-intervals of the parent, in order.
        previous_end = span.start_seconds
        for child in span.children:
            assert child.parent is span
            assert child.start_seconds >= previous_end
            previous_end = child.end_seconds
        assert previous_end <= span.end_seconds
        # Delta decomposes into children plus non-negative own work.
        for key, value in span.self_delta.counter_totals().items():
            assert value >= -1e-9, (span.path, key, value)
    roots = trace.spans
    previous_end = trace.start_seconds
    for root in roots:
        assert root.start_seconds >= previous_end
        previous_end = root.end_seconds
    assert previous_end <= trace.end_seconds


def assert_counters_equal(a, b):
    totals_a = a.counter_totals()
    totals_b = b.counter_totals()
    for key in totals_a:
        assert totals_a[key] == pytest.approx(totals_b[key], abs=1e-9), key


class TestTracerUnit:
    def test_spans_nest_strictly(self):
        tracer = Tracer(BlockDevice(block_size=256).stats)
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        with pytest.raises(TraceError):
            tracer.end(outer)
        tracer.end(inner)
        tracer.end(outer)
        trace = tracer.finish()
        assert [span.name for span, _d in trace.walk()] == [
            "outer", "inner"
        ]
        assert inner.path == "outer/inner"

    def test_finish_is_idempotent_and_closes_open_spans(self):
        tracer = Tracer(BlockDevice(block_size=256).stats)
        tracer.begin("left-open")
        trace = tracer.finish()
        assert trace.spans[0].attrs["truncated"] is True
        assert tracer.finish() is trace
        with pytest.raises(TraceError):
            tracer.begin("too-late")

    def test_maybe_span_without_tracer_is_noop(self):
        with maybe_span(None, "anything", attr=1) as span:
            assert span is None

    def test_top_level_event_gets_synthetic_span(self):
        tracer = Tracer(BlockDevice(block_size=256).stats)
        tracer.event("lonely", detail=7)
        trace = tracer.finish()
        assert trace.spans[0].events[0].name == "lonely"
        assert trace.spans[0].total_ios == 0


class TestSpanTreeProperties:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        tree=document_tree(),
        options=st.sampled_from(OPTION_GRID),
        cache=st.sampled_from([0, 2]),
    )
    def test_nexsort_trace_well_formed_and_tiles_totals(
        self, tree, options, cache
    ):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        tracer = Tracer(device.stats)
        nexsort(
            doc,
            SPEC,
            memory_blocks=6 + cache,
            cache_blocks=cache,
            merge_options=options,
            tracer=tracer,
        )
        trace = tracer.finish()
        assert_well_formed(trace)
        assert_counters_equal(trace.top_level_sum(), trace.totals)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        tree=document_tree(),
        options=st.sampled_from(OPTION_GRID),
    )
    def test_merge_sort_trace_well_formed_and_tiles_totals(
        self, tree, options
    ):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        tracer = Tracer(device.stats)
        external_merge_sort(
            doc, SPEC, memory_blocks=4, merge_options=options,
            tracer=tracer,
        )
        trace = tracer.finish()
        assert_well_formed(trace)
        assert_counters_equal(trace.top_level_sum(), trace.totals)


class TestTracingNeverPerturbs:
    def sort_fig5(self, algorithm, traced):
        device = BlockDevice(block_size=512)
        store = RunStore(device)
        document = Document.from_events(store, fig5_events())
        tracer = Tracer(device.stats) if traced else None
        if algorithm == "nexsort":
            result, report = nexsort(
                document, SPEC, memory_blocks=24, tracer=tracer
            )
        else:
            result, report = external_merge_sort(
                document, SPEC, memory_blocks=24, tracer=tracer
            )
        trace = tracer.finish() if traced else None
        return result.to_string(), report, trace

    def test_untraced_matches_seed_golden(self):
        _out, nexsort_report, _ = self.sort_fig5("nexsort", traced=False)
        _out, merge_report, _ = self.sort_fig5("mergesort", traced=False)
        assert nexsort_report.total_ios == SEED_GOLDEN_M24[0]
        assert merge_report.total_ios == SEED_GOLDEN_M24[1]

    @pytest.mark.parametrize("algorithm", ["nexsort", "mergesort"])
    def test_traced_run_is_bit_identical(self, algorithm):
        plain_out, plain_report, _ = self.sort_fig5(algorithm, False)
        traced_out, traced_report, trace = self.sort_fig5(algorithm, True)
        assert traced_out == plain_out
        assert traced_report.total_ios == plain_report.total_ios
        assert (
            traced_report.simulated_seconds
            == plain_report.simulated_seconds
        )
        assert (
            traced_report.merge_comparisons
            == plain_report.merge_comparisons
        )
        # ... and the trace it produced accounts for every counter.
        assert_well_formed(trace)
        assert_counters_equal(trace.top_level_sum(), trace.totals)


class TestRenderers:
    def finished_trace(self):
        device = BlockDevice(block_size=512)
        store = RunStore(device)
        tracer = Tracer(device.stats)
        nexsort(small_doc(store), SPEC, memory_blocks=8, tracer=tracer)
        return tracer.finish()

    def test_jsonl_and_chrome_agree(self, tmp_path):
        trace = self.finished_trace()
        jsonl_path = tmp_path / "t.jsonl"
        chrome_path = tmp_path / "t.json"
        with open(jsonl_path, "w", encoding="utf-8") as fp:
            write_jsonl(trace, fp)
        with open(chrome_path, "w", encoding="utf-8") as fp:
            write_chrome_trace(trace, fp)
        loaded_jsonl = load_trace(str(jsonl_path))
        loaded_chrome = load_trace(str(chrome_path))
        assert loaded_jsonl.format == "jsonl"
        assert loaded_chrome.format == "chrome"
        diff = diff_files(str(jsonl_path), str(chrome_path))
        assert diff.identical, diff.render()

    def test_tree_summary_mentions_phases_and_totals(self):
        trace = self.finished_trace()
        rendered = render_tree(trace)
        assert "document-scan" in rendered
        assert "output-walk" in rendered
        assert f"{trace.totals.total_ios:>8}" in rendered

    def test_chrome_events_are_schema_shaped(self):
        trace = self.finished_trace()
        fp = io.StringIO()
        write_chrome_trace(trace, fp)
        document = json.loads(fp.getvalue())
        assert document["otherData"]["format"] == "repro-trace-chrome"
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            assert "name" in event and "pid" in event and "tid" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0


class TestCliSurface:
    def write_input(self, tmp_path):
        device = BlockDevice(block_size=512)
        store = RunStore(device)
        path = tmp_path / "input.xml"
        path.write_text(small_doc(store).to_string(indent="  "))
        return path

    def test_sort_trace_top_level_sums_to_totals(self, tmp_path):
        """Acceptance: top-level Chrome span deltas sum to global totals."""
        source = self.write_input(tmp_path)
        trace_path = tmp_path / "trace.json"
        code = main([
            "sort", str(source),
            "-o", str(tmp_path / "out.xml"),
            "--memory", "8", "--block-size", "512",
            "--trace", str(trace_path), "--trace-format", "chrome",
        ])
        assert code == 0
        document = json.loads(trace_path.read_text())
        totals = document["otherData"]["totals"]
        top_level = [
            event for event in document["traceEvents"]
            if event.get("ph") == "X"
            and "/" not in event["args"]["path"]
        ]
        assert top_level, "trace has no top-level spans"
        for key in (
            "reads", "writes", "total_ios", "sequential_ios",
            "random_ios", "cache_hits", "cache_misses",
            "cache_evictions", "comparisons", "merge_comparisons",
            "tokens",
        ):
            assert sum(
                event["args"]["io"][key] for event in top_level
            ) == totals[key], key
        assert sum(
            event["args"]["io"]["seconds"] for event in top_level
        ) == pytest.approx(totals["seconds"], abs=1e-6)

    def test_trace_diff_self_is_identical(self, tmp_path, capsys):
        source = self.write_input(tmp_path)
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            trace_path = tmp_path / name
            assert main([
                "sort", str(source),
                "-o", str(tmp_path / "out.xml"),
                "--memory", "8", "--block-size", "512",
                "--trace", str(trace_path), "--trace-format", "jsonl",
            ]) == 0
            paths.append(trace_path)
        assert main(["trace", "diff", str(paths[0]), str(paths[1])]) == 0
        assert "identical" in capsys.readouterr().out

    def test_trace_diff_flags_injected_delta(self, tmp_path, capsys):
        source = self.write_input(tmp_path)
        trace_path = tmp_path / "a.jsonl"
        assert main([
            "sort", str(source),
            "-o", str(tmp_path / "out.xml"),
            "--memory", "8", "--block-size", "512",
            "--trace", str(trace_path), "--trace-format", "jsonl",
        ]) == 0
        mutated = tmp_path / "b.jsonl"
        lines = trace_path.read_text().splitlines()
        for index, line in enumerate(lines):
            record = json.loads(line)
            if record.get("type") == "span":
                record["io"]["reads"] += 7
                lines[index] = json.dumps(record)
                break
        mutated.write_text("\n".join(lines) + "\n")
        assert main(
            ["trace", "diff", str(trace_path), str(mutated)]
        ) == 1
        rendered = capsys.readouterr().out
        assert "reads: +7" in rendered

    def test_trace_diff_rejects_non_trace_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.txt"
        bogus.write_text("this is not a trace\n")
        trace = tmp_path / "a.jsonl"
        trace.write_text(bogus.read_text())
        assert main(["trace", "diff", str(bogus), str(trace)]) == 2
        assert "error:" in capsys.readouterr().err
