"""Unit tests for generic multi-way run merging."""

import pytest

from repro.baselines import merge_pass, merge_to_single_run, merge_to_stream
from repro.baselines.merging import write_sorted_run
from repro.errors import RunError
from repro.io import BlockDevice, RunStore


def make_store():
    device = BlockDevice(block_size=128)
    return device, RunStore(device)


def write_run(store, values):
    writer = store.create_writer()
    for value in values:
        writer.write_record(value.to_bytes(4, "big"))
    return writer.finish()


def key_of(record: bytes) -> int:
    return int.from_bytes(record, "big")


def read_values(store, handle):
    return [key_of(record) for record in store.open_reader(handle)]


class TestMergePass:
    def test_merges_in_order(self):
        _, store = make_store()
        runs = [
            write_run(store, [1, 4, 7]),
            write_run(store, [2, 5, 8]),
            write_run(store, [3, 6, 9]),
        ]
        merged = [key_of(r) for r in merge_pass(store, runs, key_of)]
        assert merged == list(range(1, 10))

    def test_empty_runs_handled(self):
        _, store = make_store()
        runs = [write_run(store, []), write_run(store, [1, 2])]
        merged = [key_of(r) for r in merge_pass(store, runs, key_of)]
        assert merged == [1, 2]

    def test_single_run_streams_through(self):
        _, store = make_store()
        runs = [write_run(store, [3, 1, 2])]  # not re-sorted
        merged = [key_of(r) for r in merge_pass(store, runs, key_of)]
        assert merged == [3, 1, 2]

    def test_consumed_runs_are_freed(self):
        device, store = make_store()
        runs = [write_run(store, [1]), write_run(store, [2])]
        occupied = device.occupied_blocks
        list(merge_pass(store, runs, key_of))
        assert device.occupied_blocks < occupied

    def test_comparisons_charged(self):
        device, store = make_store()
        runs = [write_run(store, [1, 3]), write_run(store, [2, 4])]
        before = device.stats.comparisons
        list(merge_pass(store, runs, key_of))
        assert device.stats.comparisons > before


class TestMultiPass:
    def test_merge_to_single_run(self):
        _, store = make_store()
        runs = [write_run(store, sorted([i, i + 10, i + 20])) for i in range(9)]
        final, passes = merge_to_single_run(store, runs, key_of, fan_in=3)
        assert passes == 2  # 9 -> 3 -> 1
        values = read_values(store, final)
        assert values == sorted(values)
        assert len(values) == 27

    def test_merge_to_stream_saves_final_pass(self):
        _, store = make_store()
        runs = [write_run(store, sorted([i, i + 10])) for i in range(6)]
        stream, passes, width = merge_to_stream(store, runs, key_of, fan_in=3)
        assert passes == 1  # 6 -> 2, then streamed
        assert width == 2
        values = [key_of(r) for r in stream]
        assert values == sorted(values)

    def test_merge_to_stream_single_run_no_passes(self):
        _, store = make_store()
        runs = [write_run(store, [1, 2, 3])]
        stream, passes, width = merge_to_stream(store, runs, key_of, fan_in=4)
        assert (passes, width) == (0, 1)
        assert [key_of(r) for r in stream] == [1, 2, 3]

    def test_bad_fan_in_rejected(self):
        _, store = make_store()
        runs = [write_run(store, [1])]
        with pytest.raises(RunError):
            merge_to_single_run(store, runs, key_of, fan_in=1)

    def test_nothing_to_merge_rejected(self):
        _, store = make_store()
        with pytest.raises(RunError):
            merge_to_single_run(store, [], key_of, fan_in=2)

    def test_pass_count_matches_logarithm(self):
        _, store = make_store()
        runs = [write_run(store, [i]) for i in range(30)]
        _, passes = merge_to_single_run(store, runs, key_of, fan_in=4)
        # 30 -> 8 -> 2 -> 1
        assert passes == 3


class TestWriteSortedRun:
    def test_sorts_before_writing(self):
        _, store = make_store()
        records = [value.to_bytes(4, "big") for value in [5, 1, 4, 2, 3]]
        handle = write_sorted_run(store, records, key_of)
        assert read_values(store, handle) == [1, 2, 3, 4, 5]

    def test_charges_comparisons(self):
        device, store = make_store()
        records = [value.to_bytes(4, "big") for value in range(100)]
        before = device.stats.comparisons
        write_sorted_run(store, records, key_of)
        assert device.stats.comparisons >= before + 100
