"""Failure injection: corruption and misuse must fail loudly and typed.

Errors should never pass silently: a corrupted block, a truncated record,
or a misused structure must surface as the package's typed exceptions,
never as an IndexError/UnicodeDecodeError leaking from internals or -
worse - silently wrong output.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, ReproError, XMLSyntaxError
from repro.io import BlockDevice, RunStore
from repro.xml import Document, TokenCodec, parse_events
from repro.xml.codec import decode_key_atom, read_varint

from .conftest import random_tree


class TestCorruptTokenRecords:
    @settings(max_examples=150, deadline=None)
    @given(garbage=st.binary(min_size=1, max_size=64))
    def test_decoding_garbage_raises_typed_errors(self, garbage):
        codec = TokenCodec()
        try:
            codec.decode(garbage)
        except ReproError:
            pass  # typed failure: good
        except (UnicodeDecodeError, OverflowError, ValueError):
            pass  # string decode of random bytes: acceptable, contained
        # Anything else (IndexError, KeyError...) fails the test.

    @settings(max_examples=100, deadline=None)
    @given(
        data=st.binary(max_size=32),
        position=st.integers(min_value=0, max_value=32),
    )
    def test_varint_reader_never_crashes_uncontrolled(self, data, position):
        position = min(position, len(data))
        try:
            read_varint(data, position)
        except CodecError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(max_size=32))
    def test_key_atom_decoder_contained(self, data):
        try:
            decode_key_atom(data, 0)
        except (CodecError, UnicodeDecodeError):
            pass

    def test_truncated_token_record(self):
        codec = TokenCodec()
        from repro.xml.tokens import StartTag

        encoded = codec.encode(
            StartTag("element", (("attr", "value"),))
        )
        for cut in range(1, len(encoded)):
            try:
                codec.decode(encoded[:cut])
            except (ReproError, UnicodeDecodeError):
                pass


class TestCorruptDeviceContents:
    def test_overwritten_run_block_raises_not_garbage(self, spec):
        """Corrupting a sorted-run block mid-sort surfaces as a typed
        error (or a parse failure), never silently wrong output."""
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        tree = random_tree(5, depth=4, max_fanout=4, pad=10)
        doc = Document.from_element(store, tree)

        # Corrupt one block of the stored document.
        victim = doc.handle.block_ids[len(doc.handle.block_ids) // 2]
        device.write_block(victim, b"\xff" * 200, "corruption")

        from repro.core import nexsort

        with pytest.raises((ReproError, UnicodeDecodeError, ValueError)):
            result, _ = nexsort(doc, spec, memory_blocks=8)
            # If decoding happened to survive, the output must still be
            # a well-formed document - force full materialization.
            result.to_element()


class TestParserFuzzing:
    @settings(max_examples=200, deadline=None)
    @given(text=st.text(max_size=200))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            list(parse_events(text))
        except XMLSyntaxError:
            pass
        except (ValueError, OverflowError):
            pass  # numeric entity overflow etc., contained

    @settings(max_examples=100, deadline=None)
    @given(
        mutation_point=st.integers(min_value=0, max_value=200),
        replacement=st.characters(),
    )
    def test_mutated_valid_document(self, mutation_point, replacement):
        """Flipping one character of a valid document either still parses
        or raises XMLSyntaxError - never an internal error."""
        from repro.xml import element_to_string

        text = element_to_string(random_tree(1, depth=3, max_fanout=3))
        mutation_point = min(mutation_point, len(text) - 1)
        mutated = (
            text[:mutation_point] + replacement + text[mutation_point + 1 :]
        )
        try:
            list(parse_events(mutated))
        except XMLSyntaxError:
            pass


class TestMisuse:
    def test_reading_document_from_freed_blocks(self, spec):
        from repro.errors import DeviceError, RunError

        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(
            store, random_tree(2, depth=3, max_fanout=3)
        )
        doc.free()
        with pytest.raises((DeviceError, RunError)):
            doc.to_element()

    def test_sorting_with_insufficient_memory_is_typed(self, spec):
        from repro.core import NexSorter
        from repro.errors import SortSpecError

        with pytest.raises(SortSpecError):
            NexSorter(spec, 1)

    def test_stack_misuse_is_typed(self):
        from repro.errors import StackError
        from repro.io import ExternalStack

        device = BlockDevice(block_size=256)
        stack = ExternalStack(device, 1, "t")
        stack.push(b"abcdef")
        with pytest.raises(StackError):
            stack.pop_through(3)  # mid-record

    def test_budget_over_subscription_is_typed(self):
        from repro.errors import MemoryBudgetExceeded
        from repro.io import MemoryBudget

        budget = MemoryBudget(4)
        budget.reserve(4)
        with pytest.raises(MemoryBudgetExceeded):
            budget.reserve(1)
