"""Unit and property tests for the external-memory stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StackError
from repro.io import BlockDevice, ExternalStack


def make_stack(buffer_blocks: int = 1, block_size: int = 256):
    device = BlockDevice(block_size=block_size)
    return device, ExternalStack(device, buffer_blocks, "test")


class TestBasicOperations:
    def test_push_returns_locations(self):
        _, stack = make_stack()
        assert stack.push(b"aaa") == 0
        assert stack.push(b"bb") == 3
        assert stack.push(b"c") == 5
        assert stack.total_bytes == 6

    def test_lifo_order(self):
        _, stack = make_stack()
        stack.push(b"first")
        stack.push(b"second")
        assert stack.pop() == b"second"
        assert stack.pop() == b"first"

    def test_pop_empty_raises(self):
        _, stack = make_stack()
        with pytest.raises(StackError):
            stack.pop()

    def test_len_and_is_empty(self):
        _, stack = make_stack()
        assert stack.is_empty
        stack.push(b"x")
        assert len(stack) == 1
        stack.pop()
        assert stack.is_empty

    def test_pop_through_returns_in_push_order(self):
        _, stack = make_stack()
        locations = [stack.push(bytes([65 + i]) * 4) for i in range(6)]
        popped = stack.pop_through(locations[2])
        assert popped == [bytes([65 + i]) * 4 for i in range(2, 6)]
        assert stack.total_bytes == locations[2]
        assert len(stack) == 2

    def test_pop_through_top_is_empty_list(self):
        _, stack = make_stack()
        stack.push(b"abc")
        assert stack.pop_through(stack.total_bytes) == []

    def test_pop_through_beyond_top_raises(self):
        _, stack = make_stack()
        stack.push(b"abc")
        with pytest.raises(StackError):
            stack.pop_through(99)

    def test_pop_through_misaligned_raises(self):
        _, stack = make_stack()
        stack.push(b"abcd")
        stack.push(b"efgh")
        with pytest.raises(StackError):
            stack.pop_through(2)  # middle of the first record


class TestPaging:
    def test_spill_and_page_in_counted(self):
        device, stack = make_stack(buffer_blocks=1, block_size=256)
        for index in range(40):
            stack.push(bytes([index]) * 32)  # 1280 bytes >> 256 capacity
        assert stack.page_outs > 0
        assert stack.spilled_bytes > 0
        before_ins = stack.page_ins
        while not stack.is_empty:
            stack.pop()
        assert stack.page_ins > before_ins
        counters = device.stats.by_category["test"]
        assert counters.writes == stack.page_outs
        assert counters.reads == stack.page_ins

    def test_no_prefetch_policy(self):
        """Spilled blocks are only read when a pop actually reaches them."""
        _, stack = make_stack(buffer_blocks=1, block_size=256)
        for index in range(40):
            stack.push(bytes([index]) * 32)
        assert stack.page_ins == 0  # pushes never page in
        stack.pop()  # top is in memory: still no page-in
        assert stack.page_ins == 0

    def test_content_survives_paging(self):
        _, stack = make_stack(buffer_blocks=1, block_size=256)
        records = [bytes([i % 251]) * (7 + i % 13) for i in range(200)]
        for record in records:
            stack.push(record)
        for expected in reversed(records):
            assert stack.pop() == expected

    def test_record_larger_than_block_spills_as_big_segment(self):
        _, stack = make_stack(buffer_blocks=1, block_size=256)
        big = bytes(range(256)) * 4  # 1024 bytes > block
        stack.push(big)
        stack.push(b"small" * 60)  # force the big record out
        stack.push(b"tiny")
        assert stack.pop() == b"tiny"
        assert stack.pop() == b"small" * 60
        assert stack.pop() == big

    def test_record_larger_than_whole_buffer(self):
        _, stack = make_stack(buffer_blocks=2, block_size=256)
        giant = b"G" * 2000
        stack.push(giant)
        assert stack.pop() == giant

    def test_total_bytes_tracks_spilled_and_memory(self):
        _, stack = make_stack(buffer_blocks=1, block_size=256)
        total = 0
        for index in range(50):
            record = bytes([index]) * 20
            total += len(record)
            stack.push(record)
            assert stack.total_bytes == total
            assert (
                stack.in_memory_bytes + stack.spilled_bytes
                == stack.total_bytes
            )

    def test_pop_through_pages_spilled_segments(self):
        _, stack = make_stack(buffer_blocks=1, block_size=256)
        locations = [stack.push(bytes([i % 251]) * 25) for i in range(64)]
        popped = stack.pop_through(locations[5])
        assert len(popped) == 59
        assert stack.page_ins > 0
        assert len(stack) == 5

    def test_min_buffer_blocks_enforced(self):
        device = BlockDevice(block_size=256)
        with pytest.raises(StackError):
            ExternalStack(device, 0, "bad")


class TestHypothesisModel:
    @settings(max_examples=60, deadline=None)
    @given(
        operations=st.lists(
            st.one_of(
                st.binary(min_size=1, max_size=120),  # push payload
                st.just(None),  # pop
            ),
            max_size=300,
        ),
        buffer_blocks=st.integers(min_value=1, max_value=3),
    )
    def test_behaves_like_a_list(self, operations, buffer_blocks):
        """Arbitrary push/pop interleavings match a plain Python list."""
        _, stack = make_stack(buffer_blocks=buffer_blocks, block_size=256)
        model: list[bytes] = []
        for operation in operations:
            if operation is None:
                if model:
                    assert stack.pop() == model.pop()
                else:
                    with pytest.raises(StackError):
                        stack.pop()
            else:
                stack.push(operation)
                model.append(operation)
            assert stack.total_bytes == sum(len(r) for r in model)
            assert len(stack) == len(model)
        while model:
            assert stack.pop() == model.pop()

    @settings(max_examples=40, deadline=None)
    @given(
        records=st.lists(
            st.binary(min_size=1, max_size=80), min_size=1, max_size=120
        ),
        cut=st.integers(min_value=0, max_value=119),
    )
    def test_pop_through_matches_slicing(self, records, cut):
        cut = min(cut, len(records))
        _, stack = make_stack(buffer_blocks=1, block_size=256)
        locations = [stack.push(record) for record in records]
        target = (
            locations[cut] if cut < len(records) else stack.total_bytes
        )
        popped = stack.pop_through(target)
        assert popped == records[cut:]
        assert len(stack) == cut
