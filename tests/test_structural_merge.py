"""Tests for the structural merge (Example 1.1 / Figure 1)."""

import pytest

from repro.core import nexsort
from repro.errors import MergeError
from repro.generators import (
    figure1_d1,
    figure1_d2,
    figure1_merged,
    figure1_spec,
    payroll_events,
    personnel_events,
)
from repro.io import BlockDevice, RunStore
from repro.keys import ByText, SortSpec
from repro.merge import StructuralMerger, structural_merge
from repro.xml import Document, Element


def fresh_store():
    device = BlockDevice(block_size=256)
    return device, RunStore(device)


def sort_doc(store, tree, spec, depth_limit=None, memory=8):
    doc = Document.from_element(store, tree)
    result, _report = nexsort(
        doc, spec, memory_blocks=memory, depth_limit=depth_limit
    )
    return result


class TestFigure1:
    def test_exact_paper_reproduction(self):
        """Sort D1 and D2 to employee depth, merge: the Figure 1 result."""
        _device, store = fresh_store()
        spec = figure1_spec()
        left = sort_doc(store, figure1_d1(), spec, depth_limit=3)
        right = sort_doc(store, figure1_d2(), spec, depth_limit=3)
        merged, report = structural_merge(left, right, spec, depth_limit=3)
        assert merged.to_element() == figure1_merged()
        assert report.elements_merged >= 4  # company, AC, Durham, 323

    def test_head_to_toe_variant_sorts_leaf_level_too(self):
        _device, store = fresh_store()
        spec = figure1_spec()
        left = sort_doc(store, figure1_d1(), spec)
        right = sort_doc(store, figure1_d2(), spec)
        merged, _report = structural_merge(left, right, spec)
        root = merged.to_element()
        durham = [
            branch
            for region in root.find_all("region")
            for branch in region.find_all("branch")
            if branch.attrs.get("name") == "Durham"
        ][0]
        employee = [
            e for e in durham.find_all("employee") if e.attrs["ID"] == "323"
        ][0]
        tags = [child.tag for child in employee.children]
        assert tags == sorted(tags)  # bonus, name, phone, salary


class TestSemantics:
    def test_merge_with_self_is_identity_on_structure(self, spec):
        _device, store = fresh_store()
        tree = Element.parse(
            '<r name="r"><a name="1">x</a><a name="2"/></r>'
        )
        left = sort_doc(store, tree, spec)
        right = sort_doc(store, tree, spec)
        merged, report = structural_merge(left, right, spec)
        assert merged.to_element() == left.to_element()
        assert report.elements_left_only == 0
        assert report.elements_right_only == 0

    def test_disjoint_children_union(self, spec):
        _device, store = fresh_store()
        left = sort_doc(
            store, Element.parse('<r><a name="1"/><a name="3"/></r>'), spec
        )
        right = sort_doc(
            store, Element.parse('<r><a name="2"/><a name="4"/></r>'), spec
        )
        merged, report = structural_merge(left, right, spec)
        names = [c.attrs["name"] for c in merged.to_element().children]
        assert names == ["1", "2", "3", "4"]
        assert report.elements_left_only == 2
        assert report.elements_right_only == 2

    def test_attribute_union_left_wins(self, spec):
        _device, store = fresh_store()
        left = sort_doc(
            store, Element.parse('<r name="k" a="L" shared="L"/>'), spec
        )
        right = sort_doc(
            store, Element.parse('<r name="k" b="R" shared="R"/>'), spec
        )
        merged, _report = structural_merge(left, right, spec)
        attrs = merged.to_element().attrs
        assert attrs == {"name": "k", "a": "L", "shared": "L", "b": "R"}

    def test_left_text_wins(self, spec):
        _device, store = fresh_store()
        left = sort_doc(store, Element.parse("<r>left</r>"), spec)
        right = sort_doc(store, Element.parse("<r>right</r>"), spec)
        merged, _report = structural_merge(left, right, spec)
        assert merged.to_element().text == "left"

    def test_right_text_fills_gap(self, spec):
        _device, store = fresh_store()
        left = sort_doc(store, Element.parse("<r></r>"), spec)
        right = sort_doc(store, Element.parse("<r>right</r>"), spec)
        merged, _report = structural_merge(left, right, spec)
        assert merged.to_element().text == "right"

    def test_same_key_different_tags_both_survive(self, spec):
        _device, store = fresh_store()
        left = sort_doc(store, Element.parse('<r><a name="k"/></r>'), spec)
        right = sort_doc(store, Element.parse('<r><b name="k"/></r>'), spec)
        merged, _report = structural_merge(left, right, spec)
        assert [c.tag for c in merged.to_element().children] == ["a", "b"]

    def test_result_is_sorted(self, spec):
        from repro.baselines import is_fully_sorted

        _device, store = fresh_store()
        from .conftest import random_tree

        left = sort_doc(store, random_tree(1, depth=4, max_fanout=4), spec)
        right = sort_doc(store, random_tree(2, depth=4, max_fanout=4), spec)
        merged, _report = structural_merge(left, right, spec)
        assert is_fully_sorted(merged.to_element(), spec)


class TestSinglePass:
    def test_each_input_block_read_once(self):
        """The headline property: merge in a single pass over both inputs."""
        _device, store = fresh_store()
        spec = figure1_spec()
        left_doc = Document.from_events(store, personnel_events(3, 3, 10))
        right_doc = Document.from_events(store, payroll_events(3, 3, 10))
        left, _ = nexsort(left_doc, spec, memory_blocks=8)
        right, _ = nexsort(right_doc, spec, memory_blocks=8)
        _merged, report = structural_merge(left, right, spec)
        assert (
            report.stats.category_total("merge_scan_left")
            == left.block_count
        )
        assert (
            report.stats.category_total("merge_scan_right")
            == right.block_count
        )

    def test_merge_io_is_linear_in_inputs(self):
        _device, store = fresh_store()
        spec = figure1_spec()
        left_doc = Document.from_events(store, personnel_events(4, 4, 12))
        right_doc = Document.from_events(store, payroll_events(4, 4, 12))
        left, _ = nexsort(left_doc, spec, memory_blocks=8)
        right, _ = nexsort(right_doc, spec, memory_blocks=8)
        merged, report = structural_merge(left, right, spec)
        total = (
            left.block_count + right.block_count + merged.block_count
        )
        assert report.total_ios == total


class TestValidation:
    def test_subtree_spec_rejected(self):
        with pytest.raises(MergeError):
            StructuralMerger(SortSpec(default=ByText()))

    def test_different_devices_rejected(self, spec):
        _d1, store1 = fresh_store()
        _d2, store2 = fresh_store()
        left = sort_doc(store1, Element.parse("<r/>"), spec)
        right = sort_doc(store2, Element.parse("<r/>"), spec)
        with pytest.raises(MergeError):
            structural_merge(left, right, spec)

    def test_mismatched_roots_rejected(self, spec):
        _device, store = fresh_store()
        left = sort_doc(store, Element.parse("<a/>"), spec)
        right = sort_doc(store, Element.parse("<b/>"), spec)
        with pytest.raises(MergeError):
            structural_merge(left, right, spec)
