"""Tests for parallel-disk striping, the overlapped pipeline, and prefetch.

The load-bearing invariant throughout: the pipeline changes *when* work
happens, never *how much*.  A 1-disk stripe (and prefetch off) must be
bit-identical to the serial :class:`BlockDevice` in every counter and
simulated second; striping and prefetching only redistribute the same
charges across disk clocks and reduce consumer stall.
"""

import pytest

from repro.bench.harness import run_merge_sort, run_nexsort
from repro.errors import DeviceError, DeviceFault, FaultPlanError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RetryingDevice,
    RetryPolicy,
)
from repro.generators import level_fanout_events
from repro.io import BlockDevice, BufferPool, RunStore, StripedDevice
from repro.io.parallel import MergePrefetcher, supports_prefetch
from repro.merge.engine import MergeOptions

BLOCK = 256


def make_striped(disks=4, nblocks=16, **kwargs):
    device = StripedDevice(disks=disks, block_size=BLOCK, **kwargs)
    start = device.allocate(nblocks)
    for i in range(nblocks):
        device.write_block(start + i, bytes([i]) * 8, "setup")
    return device, start


def _totals(device) -> dict:
    return device.stats.snapshot().counter_totals()


def _strip_parallel(totals: dict) -> dict:
    """Drop the striping-only keys so totals compare against serial."""
    return {
        key: value
        for key, value in totals.items()
        if key
        not in ("disk_busy", "disk_seconds", "overlap_seconds",
                "stall_seconds")
    }


class TestLayout:
    def test_round_robin_mapping(self):
        device = StripedDevice(disks=4, block_size=BLOCK)
        assert [device.disk_of(g) for g in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]
        assert device._locate(9) == (1, 2)

    def test_constructor_validation(self):
        with pytest.raises(DeviceError):
            StripedDevice(disks=0)
        with pytest.raises(DeviceError):
            StripedDevice(disks=2, prefetch_depth=-1)
        with pytest.raises(DeviceError):
            StripedDevice(disks=2, prefetch_policy="psychic")
        with pytest.raises(DeviceError):
            StripedDevice(disks=2, write_buffers=0)

    def test_allocation_spans_shards(self):
        device = StripedDevice(disks=3, block_size=BLOCK)
        start = device.allocate(7)
        assert start == 0
        assert device.allocated_blocks >= 7
        # Globals 0..6 live as locals 0,0,0,1,1,1,2 across the 3 shards.
        for g in range(7):
            disk, local = device._locate(g)
            assert disk == g % 3 and local == g // 3
            device.write_block(g, b"x", "setup")
        assert device.occupied_blocks == 7

    def test_bounds_errors_use_global_ids(self):
        device, start = make_striped(disks=2, nblocks=4)
        with pytest.raises(DeviceError, match="unallocated"):
            device.read_block(start + 10_000)
        extra = device.allocate(1)
        with pytest.raises(DeviceError, match=f"never-written block {extra}"):
            device.read_block(extra)
        with pytest.raises(DeviceError, match="unallocated"):
            device.write_block(start + 10_000, b"x")
        with pytest.raises(DeviceError, match="exceeds block size"):
            device.write_block(start, b"x" * (BLOCK + 1))

    def test_data_round_trips_across_disks(self):
        device, start = make_striped(disks=3, nblocks=9)
        for i in range(9):
            assert device.read_block(start + i, "check") == bytes([i]) * 8
        datas = device.read_blocks(range(start, start + 9), "vec")
        assert datas == [bytes([i]) * 8 for i in range(9)]


class TestSerialIdentity:
    def _drive(self, device):
        """One interleaved-stream workload, identical on any device."""
        start = device.allocate(12)
        for i in range(12):
            device.write_block(start + i, bytes([i]), "run_write",
                              stream=f"w{i % 2}")
        for i in (0, 2, 4, 1, 3, 5):
            device.read_block(start + i, "run_read", stream="r")
        device.read_blocks(range(start + 6, start + 12), "merge_read")
        device.write_blocks(
            [start + 1, start + 3], [b"a", b"b"], "other"
        )
        device.stats.record_comparisons(100)
        device.stats.record_tokens(40)
        return start

    def test_one_disk_stripe_matches_serial(self):
        serial = BlockDevice(block_size=BLOCK)
        striped = StripedDevice(disks=1, block_size=BLOCK)
        self._drive(serial)
        self._drive(striped)
        serial_totals = _totals(serial)
        striped_totals = _totals(striped)
        assert _strip_parallel(striped_totals) == serial_totals
        assert striped.stats.elapsed_seconds() == pytest.approx(
            serial.stats.elapsed_seconds()
        )
        assert striped.stats.io_seconds() == pytest.approx(
            serial.stats.io_seconds()
        )
        # One disk cannot overlap with itself.
        assert striped.stats.overlap_seconds() == pytest.approx(0.0)

    def test_one_disk_write_behind_matches_serial(self):
        serial = BlockDevice(block_size=BLOCK)
        striped = StripedDevice(disks=1, block_size=BLOCK)
        for device in (serial, striped):
            start = device.allocate(6)
            for i in range(6):
                device.write_block_behind(
                    start + i, bytes([i]), "run_write"
                )
        assert _strip_parallel(_totals(striped)) == (
            _totals(serial)
        )

    def test_full_sort_identity_at_one_disk(self):
        factory = lambda: level_fanout_events([6, 5, 4], seed=3,
                                              pad_bytes=24)
        plain = run_nexsort(factory, memory_blocks=12)
        striped = run_nexsort(factory, memory_blocks=12, disks=1)
        assert striped.total_ios == plain.total_ios
        assert striped.simulated_seconds == plain.simulated_seconds
        assert striped.detail["breakdown"] == plain.detail["breakdown"]

    def test_serial_counter_totals_gain_no_keys(self):
        # Golden safety: a serial device's totals (and hence every trace
        # byte) must not grow parallel keys.
        device = BlockDevice(block_size=BLOCK)
        start = device.allocate(1)
        device.write_block(start, b"x", "w")
        assert "disk_busy" not in _totals(device)


class TestPerDiskStats:
    def test_shard_stats_sum_to_aggregate(self):
        device, start = make_striped(disks=3, nblocks=12)
        for i in range(12):
            device.read_block(start + i, "run_read")
        shards = device.shards
        assert sum(s.stats.total_reads for s in shards) == (
            device.stats.total_reads
        )
        assert sum(s.stats.total_writes for s in shards) == (
            device.stats.total_writes
        )
        for disk, shard in enumerate(shards):
            assert device.stats.disk_busy[disk] == pytest.approx(
                shard.stats.io_seconds()
            )

    def test_disk_time_falls_with_more_disks(self):
        def drive(disks):
            device = StripedDevice(disks=disks, block_size=BLOCK)
            start = device.allocate(24)
            for i in range(24):
                device.write_block(start + i, b"x", "w")
            for i in range(24):
                device.read_block(start + i, "r")
            return device.stats

        serial, two, four = drive(1), drive(2), drive(4)
        assert serial.io_seconds() == pytest.approx(two.io_seconds())
        assert two.io_seconds() == pytest.approx(four.io_seconds())
        assert two.disk_seconds() < serial.disk_seconds()
        assert four.disk_seconds() < two.disk_seconds()
        assert four.overlap_seconds() > two.overlap_seconds()

    def test_utilization_normalized_to_busiest(self):
        device, start = make_striped(disks=2, nblocks=8)
        # Hammer disk 0 (even globals) harder.
        for _ in range(5):
            for i in (0, 2, 4, 6):
                device.read_block(start + i, "hot")
        utilization = device.disk_utilization()
        assert max(utilization) == pytest.approx(1.0)
        assert all(0.0 <= u <= 1.0 for u in utilization)
        mapping = device.stats.disk_utilization()
        assert set(mapping) <= {0, 1}
        assert max(mapping.values()) == pytest.approx(1.0)


class TestPipeline:
    def test_synchronous_io_stalls_full_service(self):
        # All-demand access: every I/O waits out its own service time, so
        # total stall equals serial I/O time (nothing was overlapped).
        device, start = make_striped(disks=2, nblocks=6)
        for i in range(6):
            device.read_block(start + i, "r")
        assert device.stats.stall_seconds == pytest.approx(
            device.stats.io_seconds()
        )

    def test_write_behind_within_buffers_never_stalls(self):
        device = StripedDevice(disks=1, block_size=BLOCK)
        start = device.allocate(2)
        device.write_block_behind(start, b"a", "w")
        device.write_block_behind(start + 1, b"b", "w")
        assert device.stats.stall_seconds == 0.0

    def test_write_behind_backpressure_stalls_third_write(self):
        device = StripedDevice(disks=1, block_size=BLOCK)
        start = device.allocate(3)
        for i in range(3):
            device.write_block_behind(start + i, b"x", "w")
        assert device.stats.stall_seconds > 0.0
        # ...but far less than waiting out every write.
        assert device.stats.stall_seconds < device.stats.io_seconds()

    def test_pipeline_seconds_covers_in_flight_writes(self):
        device = StripedDevice(disks=2, block_size=BLOCK)
        start = device.allocate(2)
        device.write_block_behind(start, b"a", "w")
        assert device.pipeline_seconds > 0.0
        assert device.pipeline_seconds >= device.stats.stall_seconds


class TestPrefetch:
    def test_window_bounded_by_depth(self):
        device, start = make_striped(disks=2, nblocks=8, prefetch_depth=2)
        issued = device.prefetch_blocks(range(start, start + 5), "r")
        assert issued == 2
        assert device.prefetched_blocks == 2

    def test_prefetch_disabled_issues_nothing(self):
        device, start = make_striped(disks=2, nblocks=4)
        assert device.prefetch_blocks([start], "r") == 0
        serial = BlockDevice(block_size=BLOCK)
        serial.allocate(1)
        assert serial.prefetch_blocks([0], "r") == 0

    def test_prefetched_read_charges_no_new_counters(self):
        device, start = make_striped(disks=2, nblocks=4, prefetch_depth=4)
        device.prefetch_blocks([start, start + 1], "r", stream="s")
        before = _strip_parallel(_totals(device))
        assert device.read_block(start, "r", stream="s") == bytes([0]) * 8
        assert device.read_block(start + 1, "r", stream="s") == (
            bytes([1]) * 8
        )
        after = _strip_parallel(_totals(device))
        assert after == before
        assert device.prefetched_blocks == 0

    def test_prefetch_then_demand_equals_pure_demand(self):
        def consume(prefetch):
            device, start = make_striped(
                disks=2, nblocks=8, prefetch_depth=4
            )
            baseline = device.stats.snapshot()
            for i in range(8):
                if prefetch:
                    device.prefetch_blocks(
                        range(start + i, start + 8), "r", stream="s"
                    )
                device.read_block(start + i, "r", stream="s")
            return device.stats.since(baseline)

        demand = consume(prefetch=False)
        prefetched = consume(prefetch=True)
        assert prefetched.total_reads == demand.total_reads
        assert prefetched.io_seconds() == pytest.approx(
            demand.io_seconds()
        )
        assert prefetched.disk_seconds() == pytest.approx(
            demand.disk_seconds()
        )
        # The point of prefetching: strictly less consumer waiting.
        assert prefetched.stall_seconds < demand.stall_seconds

    def test_write_invalidates_prefetched_block(self):
        device, start = make_striped(disks=2, nblocks=4, prefetch_depth=4)
        device.prefetch_blocks([start], "r")
        device.write_block(start, b"fresh", "w")
        assert device.prefetched_blocks == 0
        assert device.read_block(start, "r") == b"fresh"

    def test_vectored_read_consumes_prefetched(self):
        device, start = make_striped(disks=2, nblocks=6, prefetch_depth=4)
        device.prefetch_blocks([start, start + 1], "r", stream="s")
        before = device.stats.total_reads
        datas = device.read_blocks(range(start, start + 4), "r", stream="s")
        assert datas == [bytes([i]) * 8 for i in range(4)]
        # Only the two unprefetched blocks were newly charged.
        assert device.stats.total_reads == before + 2
        assert device.prefetched_blocks == 0


class TestFreeAndRecovery:
    def test_free_forgets_and_hold_restores(self):
        device, start = make_striped(disks=3, nblocks=6)
        device.push_hold()
        device.free_blocks(range(start, start + 6))
        assert device.occupied_blocks == 0
        with pytest.raises(DeviceError):
            device.read_block(start)
        device.pop_hold(restore=True)
        assert device.occupied_blocks == 6
        for i in range(6):
            assert device.read_block(start + i, "r") == bytes([i]) * 8

    def test_free_drops_prefetched_entries(self):
        device, start = make_striped(disks=2, nblocks=4, prefetch_depth=4)
        device.prefetch_blocks([start], "r")
        device.free_blocks([start])
        assert device.prefetched_blocks == 0
        with pytest.raises(DeviceError):
            device.read_block(start)

    def test_run_store_free_and_live_ids_on_striped(self):
        device = StripedDevice(disks=4, block_size=BLOCK)
        store = RunStore(device)
        handles = []
        for batch in range(3):
            writer = store.create_writer()
            writer.write_records(
                bytes([batch]) * 40 for _ in range(20)
            )
            handles.append(writer.finish())
        assert store.live_run_ids() == {h.run_id for h in handles}
        assert store.total_run_blocks() == sum(
            h.block_count for h in handles
        )
        occupied = device.occupied_blocks
        store.free(handles[1])
        assert store.live_run_ids() == {
            handles[0].run_id, handles[2].run_id,
        }
        assert device.occupied_blocks == occupied - handles[1].block_count
        with pytest.raises(DeviceError):
            device.read_block(handles[1].block_ids[0])
        # Survivors still read back intact across the stripe.
        assert all(
            record == bytes([2]) * 40
            for record in store.open_reader(handles[2])
        )


class TestFaultDiskScoping:
    def test_parse_and_describe_round_trip(self):
        (rule,) = FaultPlan.parse("read@4:disk=2").rules
        assert rule.op == "read" and rule.nth == 4 and rule.disk == 2
        plan = FaultPlan.parse("read@4:run_read:disk=2")
        (scoped,) = plan.rules
        assert scoped.category == "run_read" and scoped.disk == 2
        assert "disk=2" in plan.describe()
        reparsed = FaultPlan.parse(plan.describe())
        assert reparsed.rules == plan.rules

    def test_parse_rejects_bad_disk_clauses(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("read@4:disk=2:disk=3")
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("read@4:disk=nope")
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("read@4:disk=-1")

    def test_disk_scoped_rule_counts_only_that_disk(self):
        device, start = make_striped(disks=4, nblocks=12)
        faulty = FaultInjector(device, FaultPlan.parse("read@2:disk=1"))
        # Disk 1 holds globals 1, 5, 9.  Reads elsewhere never advance
        # the scoped counter.
        faulty.read_block(start + 0, "r")
        faulty.read_block(start + 2, "r")
        faulty.read_block(start + 1, "r")  # disk-1 attempt #1
        with pytest.raises(DeviceFault) as excinfo:
            faulty.read_block(start + 5, "r")  # disk-1 attempt #2
        assert excinfo.value.disk == 1
        assert excinfo.value.transient
        # Transient: the retried read succeeds and is charged normally.
        assert faulty.read_block(start + 5, "r") == bytes([5]) * 8

    def test_device_wide_and_disk_scoped_counters_coexist(self):
        device, start = make_striped(disks=2, nblocks=8)
        faulty = FaultInjector(
            device, FaultPlan.parse("read@3;read@2:disk=1")
        )
        faulty.read_block(start + 1, "r")  # wide #1, disk-1 #1
        with pytest.raises(DeviceFault) as excinfo:
            faulty.read_block(start + 3, "r")  # wide #2, disk-1 #2 fires
        assert excinfo.value.disk == 1
        # The retry is wide attempt #3, so the device-wide rule fires
        # now - the two counters advanced independently all along.
        with pytest.raises(DeviceFault) as excinfo:
            faulty.read_block(start + 3, "r")
        assert excinfo.value.disk is None
        assert faulty.read_block(start + 3, "r") == bytes([3]) * 8

    def test_retrying_device_forwards_parallel_surface(self):
        device, start = make_striped(disks=2, nblocks=4, prefetch_depth=2)
        faulty = FaultInjector(device, FaultPlan.parse("read@100"))
        retrier = RetryingDevice(faulty, RetryPolicy(max_retries=2))
        assert retrier.disks == 2
        assert retrier.prefetch_depth == 2
        assert retrier.disk_of(start + 1) == device.disk_of(start + 1)
        assert retrier.prefetch_blocks([start], "r") == 1
        retrier.write_block_behind(start + 1, b"z", "w")
        assert device.read_block(start + 1, "r") == b"z"

    def test_prefetch_path_is_fault_checked(self):
        device, start = make_striped(disks=2, nblocks=4, prefetch_depth=2)
        faulty = FaultInjector(device, FaultPlan.parse("read@1"))
        with pytest.raises(DeviceFault):
            faulty.prefetch_blocks([start], "r")


class TestStripedThroughPool:
    def test_pool_eviction_and_stat_aggregation(self):
        device = StripedDevice(disks=2, block_size=BLOCK)
        start = device.allocate(8)
        pool = BufferPool(device, 2)
        for i in range(8):
            pool.write_block(start + i, bytes([i]), "w")
        for i in range(8):
            assert pool.read_block(start + i, "r") == bytes([i])
        pool.close()
        assert device.stats.cache_evictions > 0
        assert sum(
            s.stats.total_ios for s in device.shards
        ) == device.stats.total_ios

    def test_pool_forwards_parallel_surface(self):
        device = StripedDevice(
            disks=2, block_size=BLOCK, prefetch_depth=4,
            prefetch_policy="round-robin",
        )
        start = device.allocate(4)
        for i in range(4):
            device.write_block(start + i, bytes([i]), "setup")
        pool = BufferPool(device, 4)
        assert pool.disks == 2
        assert pool.prefetch_depth == 4
        assert pool.prefetch_policy == "round-robin"
        assert pool.disk_of(start + 1) == device.disk_of(start + 1)
        assert supports_prefetch(pool)

    def test_pool_prefetch_reports_cached_as_satisfied(self):
        device = StripedDevice(disks=2, block_size=BLOCK, prefetch_depth=4)
        start = device.allocate(4)
        for i in range(4):
            device.write_block(start + i, bytes([i]), "setup")
        pool = BufferPool(device, 4)
        pool.read_block(start, "r")  # now cached in the pool
        # A cache-resident block must count as satisfied, or the merge
        # prefetcher would mistake a hit for a full device window.
        assert pool.prefetch_blocks([start, start + 1], "r") == 2
        assert device.prefetched_blocks == 1


class _FakeReader:
    def __init__(self):
        self.block_index = -1


class _FakeRun:
    def __init__(self, run_id, nblocks):
        self.run_id = run_id
        self.block_ids = tuple(
            100 * run_id + i for i in range(nblocks)
        )


class _FakeTarget:
    """Records prefetch order; declines after ``budget`` issues."""

    prefetch_depth = 8
    prefetch_policy = None

    def __init__(self, budget=100):
        self.budget = budget
        self.issued = []

    def prefetch_blocks(self, block_ids, category, stream=None):
        count = 0
        for block_id in block_ids:
            if self.budget <= 0:
                break
            self.budget -= 1
            self.issued.append(block_id)
            count += 1
        return count


class TestMergePrefetcher:
    def _setup(self, policy, budget=100, nruns=3):
        target = _FakeTarget(budget)
        runs = [_FakeRun(i, 4) for i in range(nruns)]
        readers = [_FakeReader() for _ in range(nruns)]
        prefetcher = MergePrefetcher(
            target, runs, readers,
            category="merge_read",
            streams=[f"merge_read:run{i}" for i in range(nruns)],
            policy=policy,
        )
        return target, runs, readers, prefetcher

    def test_forecast_serves_smallest_head_first(self):
        target, runs, _readers, prefetcher = self._setup(
            "forecast", budget=3
        )
        prefetcher.note_head(0, b"mango")
        prefetcher.note_head(1, b"apple")
        prefetcher.note_head(2, b"fig")
        prefetcher.pump()
        # One block per run (lookahead is 1), smallest head key first.
        assert target.issued == [
            runs[1].block_ids[0],
            runs[2].block_ids[0],
            runs[0].block_ids[0],
        ]

    def test_unknown_head_outranks_forecast(self):
        target, runs, _readers, prefetcher = self._setup(
            "forecast", budget=1
        )
        prefetcher.note_head(0, b"aaa")
        # Run 2 has not been pulled yet: it is demanded next, so it wins
        # the only slot even against the smallest known key.
        prefetcher.pump()
        assert target.issued == [runs[1].block_ids[0]]

    def test_round_robin_cycles(self):
        target, runs, _readers, prefetcher = self._setup(
            "round-robin", budget=3
        )
        for index in range(3):
            prefetcher.note_head(index, b"zzz")
        prefetcher.pump()
        assert target.issued == [
            runs[0].block_ids[0],
            runs[1].block_ids[0],
            runs[2].block_ids[0],
        ]

    def test_exhausted_runs_are_skipped(self):
        target, runs, _readers, prefetcher = self._setup(
            "forecast", budget=10
        )
        for index in range(3):
            prefetcher.note_head(index, bytes([index]))
        prefetcher.exhausted(1)
        prefetcher.pump()
        assert runs[1].block_ids[0] not in target.issued

    def test_lookahead_limited_to_one_block(self):
        target, runs, readers, prefetcher = self._setup(
            "forecast", budget=100
        )
        for index in range(3):
            prefetcher.note_head(index, bytes([index]))
        prefetcher.pump()
        prefetcher.pump()  # no reader progress: nothing more to issue
        assert len(target.issued) == 3
        readers[0].block_index = 0  # run 0 advanced one block
        prefetcher.pump()
        assert target.issued.count(runs[0].block_ids[1]) == 1
        assert len(target.issued) == 4

    def test_supports_prefetch(self):
        assert not supports_prefetch(BlockDevice(block_size=BLOCK))
        assert not supports_prefetch(
            StripedDevice(disks=2, block_size=BLOCK)
        )
        assert supports_prefetch(
            StripedDevice(disks=2, block_size=BLOCK, prefetch_depth=1)
        )


class TestEndToEndMergePrefetch:
    def test_counters_identical_and_stall_reduced(self):
        factory = lambda: level_fanout_events([9, 8, 7], seed=5,
                                              pad_bytes=24)
        options = MergeOptions(
            merge_kernel="loser-tree", embedded_keys=True
        )
        off = run_merge_sort(
            factory, memory_blocks=12, merge_options=options, disks=4
        )
        forecast = run_merge_sort(
            factory, memory_blocks=12, merge_options=options, disks=4,
            prefetch_depth=8, prefetch_policy="forecast",
        )
        assert forecast.total_ios == off.total_ios
        assert forecast.detail["breakdown"] == off.detail["breakdown"]
        assert forecast.simulated_seconds == off.simulated_seconds
        assert forecast.detail["stall_seconds"] < (
            off.detail["stall_seconds"]
        )

    def test_bench_rows_carry_parallel_columns(self):
        factory = lambda: level_fanout_events([6, 5, 4], seed=3,
                                              pad_bytes=24)
        serial = run_nexsort(factory, memory_blocks=12)
        assert serial.detail["disks"] == 1
        assert serial.detail["prefetch_depth"] == 0
        assert serial.detail["stall_seconds"] == 0.0
        assert serial.detail["disk_utilization"] == {}
        striped = run_nexsort(factory, memory_blocks=12, disks=2)
        assert striped.detail["disks"] == 2
        assert striped.detail["disk_seconds"] < serial.detail[
            "disk_seconds"
        ]
        assert striped.detail["overlap_seconds"] > 0
        assert set(striped.detail["disk_utilization"]) == {"0", "1"}
