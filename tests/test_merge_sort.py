"""Tests for the external merge sort baseline."""

import pytest

from repro.baselines import (
    ExternalMergeSorter,
    external_merge_sort,
    is_fully_sorted,
    sort_element,
)
from repro.errors import SortSpecError
from repro.io import BlockDevice, RunStore
from repro.keys import ByText, SortSpec
from repro.xml import CompactionConfig, Document

from .conftest import flat_tree, random_tree


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_oracle(self, store, spec, seed):
        tree = random_tree(seed, depth=5, max_fanout=5, text_leaves=True)
        doc = Document.from_element(store, tree)
        result, _report = external_merge_sort(doc, spec, memory_blocks=5)
        assert result.to_element() == sort_element(tree, spec)

    def test_compact_storage(self, store, spec):
        tree = random_tree(42, depth=4, max_fanout=5)
        doc = Document.from_element(store, tree, CompactionConfig())
        result, _report = external_merge_sort(doc, spec, memory_blocks=5)
        assert result.to_element() == sort_element(tree, spec)
        # The output document stays compacted.
        assert result.compaction is not None

    def test_flat_document(self, store, spec):
        tree = flat_tree(300)
        doc = Document.from_element(store, tree)
        result, report = external_merge_sort(doc, spec, memory_blocks=5)
        assert is_fully_sorted(result.to_element(), spec)
        assert report.initial_runs > 1

    def test_single_element(self, store, spec):
        from repro.xml import Element

        doc = Document.from_element(store, Element("only", {"name": "x"}))
        result, _report = external_merge_sort(doc, spec, memory_blocks=5)
        assert result.to_element() == Element("only", {"name": "x"})

    def test_preserves_content(self, store, spec):
        tree = random_tree(9, depth=5, max_fanout=4, text_leaves=True)
        doc = Document.from_element(store, tree)
        result, _report = external_merge_sort(doc, spec, memory_blocks=6)
        assert (
            result.to_element().unordered_canonical()
            == tree.unordered_canonical()
        )


class TestValidation:
    def test_subtree_spec_rejected(self):
        with pytest.raises(SortSpecError):
            ExternalMergeSorter(SortSpec(default=ByText()), 8)

    def test_too_little_memory_rejected(self, spec):
        with pytest.raises(SortSpecError):
            ExternalMergeSorter(spec, 2)


class TestReport:
    def test_pass_accounting(self, spec):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, flat_tree(400, pad=16))
        _result, report = external_merge_sort(doc, spec, memory_blocks=4)
        assert report.initial_runs > report.fan_in
        assert report.materialized_merge_passes >= 1
        assert report.total_passes >= 3
        assert report.total_ios > 0
        assert report.simulated_seconds > 0

    def test_one_pass_when_memory_is_large(self, spec):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, flat_tree(50))
        _result, report = external_merge_sort(doc, spec, memory_blocks=64)
        assert report.initial_runs == 1
        assert report.materialized_merge_passes == 0
        assert report.total_passes == 1

    def test_more_memory_never_more_passes(self, spec):
        passes = []
        for memory in (4, 8, 16, 32):
            device = BlockDevice(block_size=256)
            store = RunStore(device)
            doc = Document.from_element(store, flat_tree(400, pad=16))
            _result, report = external_merge_sort(
                doc, spec, memory_blocks=memory
            )
            passes.append(report.total_passes)
        assert passes == sorted(passes, reverse=True)

    def test_io_breakdown_has_expected_categories(self, spec):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, flat_tree(200))
        _result, report = external_merge_sort(doc, spec, memory_blocks=4)
        categories = set(report.stats.by_category)
        assert "input_scan" in categories
        assert "run_write" in categories
        assert "output" in categories
