"""Unit tests for the batch-columnar kernels (ISSUE 6).

The accounting-parity suite pins the end-to-end counter contract; these
tests pin the individual kernels: the path-only key parse, the prefix
argsort (numpy and pure-Python backends), key sidecars, and the replay
merge against its record-at-a-time fallback.
"""

import random

import pytest

from repro.baselines.keypath import (
    decode_record,
    encode_record,
    records_from_annotated_events,
)
from repro.core import columnar
from repro.core.columnar import (
    ColumnarBatch,
    argsort_normalized,
    batch_embedded_keys,
    batch_path_keys,
    fast_path_key,
    form_runs_columnar,
    keyed_puller,
    merge_sidecars,
    run_sidecar,
)
from repro.io import BlockDevice, RunStore
from repro.keys import ByAttribute, KeyEvaluator, SortSpec
from repro.merge.engine import (
    MergeOptions,
    RunFormer,
    embed_key,
    normalized_path_key,
)
from repro.xml import parse_events

SPEC = SortSpec(default=ByAttribute("name"))

XML = (
    '<site name="root">'
    '<region name="Durham"><city name="west">rain</city>'
    '<city name="east"/></region>'
    '<region name="7"><city name="west">sun</city></region>'
    '<region name="Durham"><city name=""/></region>'
    "</site>"
)


def sample_records():
    annotated = KeyEvaluator(SPEC).annotate(parse_events(XML))
    return [
        encode_record(record)
        for record in records_from_annotated_events(annotated)
    ]


def random_keys(count, seed=11):
    rng = random.Random(seed)
    keys = []
    for _ in range(count):
        kind = rng.random()
        if kind < 0.1:
            keys.append(b"")
        elif kind < 0.4:
            # Heavy prefix collisions: differ only past the window.
            keys.append(
                b"\x02shared-prefix-shared-prefix-shared\x00"
                + bytes([rng.randrange(4)])
            )
        else:
            keys.append(
                bytes(
                    rng.randrange(256)
                    for _ in range(rng.randrange(0, 48))
                )
            )
    return keys


class TestFastPathKey:
    def test_matches_decoded_sort_key(self):
        for encoded in sample_records():
            expected = normalized_path_key(
                decode_record(encoded).sort_key()
            )
            assert fast_path_key(encoded) == expected

    def test_batch_path_keys_matches_scalar(self):
        records = sample_records()
        assert batch_path_keys(records) == [
            fast_path_key(record) for record in records
        ]

    def test_batch_embedded_keys_strips_frames(self):
        records = sample_records()
        embedded = [
            embed_key(fast_path_key(record), record)
            for record in records
        ]
        assert batch_embedded_keys(embedded) == [
            fast_path_key(record) for record in records
        ]


class TestArgsortNormalized:
    def assert_stable_order(self, keys, width=24):
        expected = sorted(range(len(keys)), key=keys.__getitem__)
        assert argsort_normalized(keys, width) == expected

    def test_small_batch_python_path(self):
        self.assert_stable_order(random_keys(500))

    def test_large_batch_vectorized_path(self):
        # Above the _SMALL_ARGSORT cutoff: exercises the numpy backend
        # (prefix argsort + tie-group full-key re-sort) when available.
        self.assert_stable_order(
            random_keys(columnar._SMALL_ARGSORT + 1000)
        )

    def test_forced_prefix_path_with_ties(self):
        keys = random_keys(3000, seed=5)
        width = 24
        strip = columnar._common_prefix_length(keys)
        prefix = columnar._prefix_buffer(keys, strip, width)
        expected = sorted(range(len(keys)), key=keys.__getitem__)
        got = argsort_normalized(
            keys, width, strip=strip, prefix=prefix
        )
        assert got == expected

    def test_pure_python_fallback(self, monkeypatch):
        monkeypatch.setattr(columnar, "_np", None)
        self.assert_stable_order(random_keys(2000))

    def test_empty_and_single(self):
        assert argsort_normalized([], 24) == []
        assert argsort_normalized([b"only"], 24) == [0]

    def test_stability_on_equal_keys(self):
        keys = [b"dup", b"a", b"dup", b"dup", b"a"] * 400
        order = argsort_normalized(keys, 24)
        positions = [i for i in order if keys[i] == b"dup"]
        assert positions == sorted(positions)


class TestColumnarBatch:
    def test_sorted_records_match_scalar_sort(self):
        records = sample_records()
        keys = [fast_path_key(record) for record in records]
        batch = ColumnarBatch(keys, records)
        expected = [
            record
            for _key, record in sorted(
                zip(keys, records), key=lambda pair: pair[0]
            )
        ]
        assert batch.sorted_records() == expected

    def test_record_roundtrip(self):
        records = sample_records()
        keys = [fast_path_key(record) for record in records]
        batch = ColumnarBatch(keys, records)
        assert [
            batch.record(i) for i in range(len(batch))
        ] == records


def form_runs(options, capacity_bytes=220):
    device = BlockDevice(block_size=128)
    store = RunStore(device)
    former = RunFormer(store, capacity_bytes, options)
    records = sample_records()
    for record in records:
        key = fast_path_key(record)
        payload = (
            embed_key(key, record) if options.embedded_keys else record
        )
        former.add(key, payload)
    return store, former.finish()


class TestSidecars:
    def test_run_formation_attaches_sidecars(self):
        options = MergeOptions(kernel="columnar")
        store, runs = form_runs(options)
        assert len(runs) > 1
        for run in runs:
            sidecar = run_sidecar(store, run, fast_path_key)
            assert sidecar is not None
            reader = store.open_reader(run)
            assert sidecar == [
                fast_path_key(record) for record in reader
            ]

    def test_sidecars_match_embedded_keys(self):
        options = MergeOptions(kernel="columnar", embedded_keys=True)
        store, runs = form_runs(options)
        from repro.merge.engine import embedded_key_of

        for run in runs:
            sidecar = run_sidecar(store, run, embedded_key_of)
            assert sidecar is not None
            reader = store.open_reader(run)
            assert sidecar == [
                embedded_key_of(record) for record in reader
            ]

    def test_custom_key_function_gets_no_sidecar(self):
        options = MergeOptions(kernel="columnar")
        store, runs = form_runs(options)
        assert run_sidecar(store, runs[0], len) is None
        assert merge_sidecars(store, runs, len) is None

    def test_freed_run_drops_sidecar(self):
        options = MergeOptions(kernel="columnar")
        store, runs = form_runs(options)
        assert runs[0].run_id in store.key_sidecars
        store.free(runs[0])
        assert runs[0].run_id not in store.key_sidecars

    def test_scalar_kernel_attaches_no_sidecars(self):
        store, _runs = form_runs(MergeOptions())
        assert store.key_sidecars == {}


class TestKeyedPuller:
    def test_sidecar_and_batch_keys_agree(self):
        options = MergeOptions(kernel="columnar")
        store, runs = form_runs(options)
        run = runs[0]
        sidecar = run_sidecar(store, run, fast_path_key)

        def drain(pull):
            out = []
            while True:
                entry = pull()
                if entry is None:
                    return out
                out.append(entry)

        computed = drain(
            keyed_puller(store.open_reader(run), batch_path_keys)
        )
        replayed = drain(
            keyed_puller(
                store.open_reader(run), batch_path_keys, sidecar
            )
        )
        assert computed == replayed
        assert [key for key, _record in computed] == sidecar


class TestReplayMerge:
    @pytest.mark.parametrize("embedded", [False, True])
    def test_replay_equals_fallback_heap_merge(self, embedded):
        from repro.baselines.merging import merge_pass
        from repro.merge.engine import embedded_key_of

        options = MergeOptions(kernel="columnar", embedded_keys=embedded)
        key_of = embedded_key_of if embedded else fast_path_key

        store, runs = form_runs(options)
        assert len(runs) > 1
        replayed = list(
            merge_pass(store, runs, key_of, options=options)
        )

        # Same runs, sidecars dropped: forces the keyed-puller fallback.
        store2, runs2 = form_runs(options)
        store2.key_sidecars.clear()
        fallback = list(
            merge_pass(store2, runs2, key_of, options=options)
        )
        assert replayed == fallback

        # And the scalar kernel agrees record for record.
        store3, runs3 = form_runs(MergeOptions(embedded_keys=embedded))
        scalar = list(
            merge_pass(
                store3,
                runs3,
                key_of,
                options=MergeOptions(embedded_keys=embedded),
            )
        )
        assert replayed == scalar


class TestFusedScan:
    @pytest.mark.parametrize("mode", ["names", "levels", "full"])
    def test_compacted_document_fast_path_matches_scalar(self, mode):
        """Compacted documents no longer fall back (ISSUE 7).

        The fused scan handles dictionary-coded and level-annotated
        (end-tag-eliminated) storage directly, forming byte-identical
        runs - same records, same order, same counters - as the scalar
        tokenize -> key-evaluate -> encode pipeline.
        """
        from repro.xml import CompactionConfig, Document

        def compaction():
            if mode == "names":
                return CompactionConfig(eliminate_end_tags=False)
            if mode == "levels":
                return CompactionConfig(names=None)
            return CompactionConfig()

        def scan(kernel):
            device = BlockDevice(block_size=128)
            store = RunStore(device)
            document = Document.from_events(
                store, parse_events(XML), compaction=compaction()
            )
            former = RunFormer(store, 600, MergeOptions(kernel=kernel))
            if kernel == "columnar":
                assert form_runs_columnar(document, SPEC, former, device)
            else:
                names = document.compaction.names
                annotated = KeyEvaluator(SPEC).annotate(
                    document.iter_events("input_scan")
                )
                for record in records_from_annotated_events(annotated):
                    device.stats.record_tokens(1)
                    former.add(
                        record.sort_key(), encode_record(record, names)
                    )
            runs = former.finish()
            contents = [list(store.open_reader(run)) for run in runs]
            return contents, device.stats.snapshot().counter_totals()

        assert scan("columnar") == scan("scalar")

    def test_non_start_computable_spec_falls_back(self):
        from repro.keys import ByText
        from repro.xml import Document

        device = BlockDevice(block_size=128)
        store = RunStore(device)
        document = Document.from_events(store, parse_events(XML))
        former = RunFormer(
            store, 600, MergeOptions(kernel="columnar")
        )
        spec = SortSpec(default=ByText())
        assert not form_runs_columnar(document, spec, former, device)
