"""Tests for the cost-model bridge between bounds and simulated time."""

from repro.analysis import (
    ModelGeometry,
    lower_bound_seconds,
    measured_over_bound,
    predicted_merge_sort_seconds,
    predicted_nexsort_seconds,
    predicted_seconds_from_ios,
)
from repro.io import CostModel
from repro.io.stats import IOStats


class TestPredictedSeconds:
    def test_monotone_in_ios(self):
        values = [
            predicted_seconds_from_ios(ios) for ios in (10, 100, 1000)
        ]
        assert values == sorted(values)

    def test_random_fraction_increases_time(self):
        calm = predicted_seconds_from_ios(1000, random_fraction=0.0)
        seeky = predicted_seconds_from_ios(1000, random_fraction=0.5)
        assert seeky > calm

    def test_custom_cost_model_scales(self):
        slow = CostModel(seek_seconds=0.1, transfer_seconds=0.01)
        assert predicted_seconds_from_ios(
            1000, cost_model=slow
        ) > predicted_seconds_from_ios(1000)


class TestGeometryPredictors:
    def geometry(self) -> ModelGeometry:
        return ModelGeometry(N=10**5, B=25, M=25 * 16, k=50)

    def test_nexsort_prediction_positive(self):
        assert predicted_nexsort_seconds(self.geometry()) > 0

    def test_merge_sort_prediction_positive(self):
        assert predicted_merge_sort_seconds(self.geometry()) > 0

    def test_lower_bound_below_upper_bound_time(self):
        geometry = self.geometry()
        assert lower_bound_seconds(geometry) <= predicted_nexsort_seconds(
            geometry
        ) + 1e-9

    def test_threshold_parameter_respected(self):
        geometry = self.geometry()
        small = predicted_nexsort_seconds(geometry, threshold_elements=25)
        large = predicted_nexsort_seconds(
            geometry, threshold_elements=2500
        )
        assert large >= small


class TestMeasuredOverBound:
    def snapshot(self, ios: int):
        stats = IOStats()
        for _ in range(ios):
            stats.record_read("x", sequential=True)
        return stats.snapshot()

    def test_ratio(self):
        assert measured_over_bound(self.snapshot(200), 100.0) == 2.0

    def test_zero_bound_is_infinite(self):
        assert measured_over_bound(self.snapshot(1), 0.0) == float("inf")
