"""Unit tests for the Section 3.2 compaction techniques."""

import pytest

from repro.errors import CodecError
from repro.xml import (
    Element,
    NameDictionary,
    annotate_levels,
    eliminate_end_tags,
    parse_events,
    restore_end_tags,
)
from repro.xml.tokens import EndTag, StartTag, Text


class TestNameDictionary:
    def test_intern_is_idempotent(self):
        names = NameDictionary()
        first = names.intern("region")
        second = names.intern("region")
        assert first == second
        assert len(names) == 1

    def test_lookup_round_trip(self):
        names = NameDictionary(["a", "b"])
        assert names.lookup(names.intern("b")) == "b"
        assert names.lookup(names.intern("c")) == "c"

    def test_unknown_id_rejected(self):
        with pytest.raises(CodecError):
            NameDictionary().lookup(5)

    def test_contains(self):
        names = NameDictionary(["x"])
        assert "x" in names
        assert "y" not in names


class TestLevels:
    def test_annotate_levels(self):
        events = list(
            annotate_levels(parse_events("<a><b><c/></b><b/></a>"))
        )
        starts = [e for e in events if isinstance(e, StartTag)]
        assert [s.level for s in starts] == [1, 2, 3, 2]

    def test_text_gets_owner_level(self):
        events = list(
            annotate_levels(parse_events("<a>top<b>inner</b></a>"))
        )
        texts = [e for e in events if isinstance(e, Text)]
        assert [t.level for t in texts] == [1, 2]


class TestEndTagElimination:
    def round_trip(self, xml: str) -> None:
        original = list(parse_events(xml))
        compacted = list(eliminate_end_tags(parse_events(xml)))
        assert not any(isinstance(t, EndTag) for t in compacted)
        restored = list(restore_end_tags(compacted))
        stripped = [
            StartTag(t.tag, t.attrs)
            if isinstance(t, StartTag)
            else (Text(t.text) if isinstance(t, Text) else t)
            for t in restored
        ]
        assert stripped == original

    def test_simple_round_trip(self):
        self.round_trip("<a><b/><c/></a>")

    def test_deep_round_trip(self):
        self.round_trip("<a><b><c><d/></c></b><e/></a>")

    def test_sibling_transition_closes_multiple(self):
        # <d/> at level 2 after level-4 content: l1 - l2 + 1 = 3 end tags.
        self.round_trip("<a><b><c><x/></c></b><d/></a>")

    def test_text_round_trip(self):
        self.round_trip("<a>alpha<b>beta</b></a>")

    def test_trailing_text_attribution(self):
        """Text after a child belongs to the parent, not the child."""
        xml = "<a><b>inner</b>tail</a>"
        restored = Element.from_events(
            restore_end_tags(eliminate_end_tags(parse_events(xml)))
        )
        assert restored == Element.parse(xml)
        assert restored.text == "tail"
        assert restored.find("b").text == "inner"

    def test_restore_rejects_missing_level(self):
        with pytest.raises(CodecError):
            list(restore_end_tags([StartTag("a")]))

    def test_restore_rejects_existing_end_tags(self):
        with pytest.raises(CodecError):
            list(
                restore_end_tags(
                    [StartTag("a", level=1), EndTag("a")]
                )
            )

    def test_compaction_shrinks_streams(self):
        xml = "<a>" + "<b><c/></b>" * 20 + "</a>"
        full = list(parse_events(xml))
        compacted = list(eliminate_end_tags(parse_events(xml)))
        assert len(compacted) < len(full)
