"""Edge cases across the full pipeline."""

from repro.baselines import external_merge_sort, sort_element
from repro.core import nexsort
from repro.io import BlockDevice, RunStore
from repro.keys import ByAttribute, DocumentOrder, SortSpec
from repro.xml import CompactionConfig, Document, Element

from .conftest import chain_tree


def fresh_store(block_size=256):
    device = BlockDevice(block_size=block_size)
    return device, RunStore(device)


class TestUnicode:
    def test_unicode_everywhere_through_nexsort(self, spec):
        _device, store = fresh_store()
        tree = Element.parse(
            '<räksmörgås name="рут">'
            '<日本語 name="zä">préfix</日本語>'
            '<emoji name="aé">✓ 完了</emoji>'
            "</räksmörgås>"
        )
        doc = Document.from_element(store, tree)
        result, _ = nexsort(doc, spec, memory_blocks=8)
        assert result.to_element() == sort_element(tree, spec)

    def test_unicode_through_compaction(self, spec):
        _device, store = fresh_store()
        tree = Element.parse(
            '<data name="κ"><元素 name="β"/><元素 name="α"/></data>'
        )
        doc = Document.from_element(store, tree, CompactionConfig())
        result, _ = nexsort(doc, spec, memory_blocks=8)
        assert result.to_element() == sort_element(tree, spec)

    def test_unicode_round_trip_to_text(self, spec):
        _device, store = fresh_store()
        tree = Element.parse('<a name="x">日本語 &amp; ünïcode</a>')
        doc = Document.from_element(store, tree)
        assert Element.parse(doc.to_string()) == tree


class TestOversizedElements:
    def test_element_larger_than_a_block(self, spec):
        """A single element bigger than a block exercises the big-record
        paths through stacks and runs."""
        _device, store = fresh_store(block_size=256)
        huge_value = "v" * 1000  # 4 blocks worth of attribute
        tree = Element.parse(
            f'<r name="r"><a name="2" payload="{huge_value}"/>'
            f'<a name="1"/></r>'
        )
        doc = Document.from_element(store, tree)
        result, _ = nexsort(doc, spec, memory_blocks=8)
        assert result.to_element() == sort_element(tree, spec)

    def test_huge_text_node(self, spec):
        _device, store = fresh_store(block_size=256)
        tree = Element.parse(
            f'<r name="r"><a name="1">{"t" * 2000}</a></r>'
        )
        doc = Document.from_element(store, tree)
        result, _ = nexsort(doc, spec, memory_blocks=8)
        assert result.to_element().find("a").text == "t" * 2000


class TestDegenerateShapes:
    def test_threshold_larger_than_document(self, spec):
        _device, store = fresh_store()
        tree = chain_tree(20)
        doc = Document.from_element(store, tree)
        result, report = nexsort(
            doc, spec, memory_blocks=8, threshold_bytes=10**9
        )
        assert report.x == 1  # only the forced root sort
        assert result.to_element() == sort_element(tree, spec)

    def test_minimum_memory_exactly(self, spec):
        from repro.io import MINIMUM_NEXSORT_BLOCKS

        _device, store = fresh_store()
        tree = chain_tree(30)
        doc = Document.from_element(store, tree)
        result, _ = nexsort(
            doc, spec, memory_blocks=MINIMUM_NEXSORT_BLOCKS
        )
        assert result.to_element() == sort_element(tree, spec)

    def test_broom_shape(self, spec):
        """A long chain ending in a wide flat fan."""
        _device, store = fresh_store()
        fan = [
            Element("leaf", {"name": f"n{(i * 7) % 50:03d}"})
            for i in range(50)
        ]
        tree = Element("top", {"name": "t"}, "", [
            Element("mid", {"name": "m"}, "", [
                Element("bottom", {"name": "b"}, "", fan)
            ])
        ])
        doc = Document.from_element(store, tree)
        result, _ = nexsort(
            doc, spec, memory_blocks=8, threshold_bytes=128
        )
        assert result.to_element() == sort_element(tree, spec)

    def test_trailing_text_after_children_compact_nexsort(self, spec):
        """Mixed content where text follows a child, in compact mode."""
        _device, store = fresh_store()
        tree = Element.from_events(
            Element.parse('<r name="r"><b name="x">inner</b></r>').to_events()
        )
        # Manually create trailing text: <r>...<b/>tail</r>
        from repro.xml.tokens import EndTag, StartTag, Text

        events = [
            StartTag("r", (("name", "r"),)),
            StartTag("b", (("name", "x"),)),
            Text("inner"),
            EndTag("b"),
            Text("tail"),
            EndTag("r"),
        ]
        doc = Document.from_events(store, events, CompactionConfig())
        result, _ = nexsort(doc, spec, memory_blocks=8)
        out = result.to_element()
        assert out.text == "tail"
        assert out.find("b").text == "inner"


class TestDocumentOrderSpec:
    def test_document_order_sort_is_identity(self):
        _device, store = fresh_store()
        spec = SortSpec(default=DocumentOrder())
        tree = Element.parse(
            '<r><z/><a/><m><q/><b/></m></r>'
        )
        doc = Document.from_element(store, tree)
        result, _ = nexsort(doc, spec, memory_blocks=8)
        assert result.to_element() == tree

    def test_document_order_merge_sort_is_identity(self):
        _device, store = fresh_store()
        spec = SortSpec(default=DocumentOrder())
        tree = Element.parse("<r><z/><a/><m><q/><b/></m></r>")
        doc = Document.from_element(store, tree)
        result, _ = external_merge_sort(doc, spec, memory_blocks=4)
        assert result.to_element() == tree


class TestNumericVsStringKeys:
    def test_numbers_sort_before_strings(self, store):
        spec = SortSpec(default=ByAttribute("k"))
        tree = Element.parse(
            '<r k="r"><a k="zz"/><a k="100"/><a k="9"/><a k="abc"/></r>'
        )
        doc = Document.from_element(store, tree)
        result, _ = nexsort(doc, spec, memory_blocks=8)
        keys = [c.attrs["k"] for c in result.to_element().children]
        # 9 < 100 numerically; numbers before strings; strings lexicographic.
        assert keys == ["9", "100", "abc", "zz"]

    def test_missing_keys_sort_first(self, store):
        spec = SortSpec(default=ByAttribute("k"))
        tree = Element.parse('<r k="r"><a k="1"/><a/><a k="a"/></r>')
        doc = Document.from_element(store, tree)
        result, _ = nexsort(doc, spec, memory_blocks=8)
        keys = [c.attrs.get("k") for c in result.to_element().children]
        assert keys == [None, "1", "a"]
