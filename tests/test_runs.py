"""Unit and property tests for sorted runs (writer/reader/store)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RunError
from repro.io import BlockDevice, RunStore


def make_store(block_size: int = 256):
    device = BlockDevice(block_size=block_size)
    return device, RunStore(device)


class TestWriterReader:
    def test_round_trip(self):
        _, store = make_store()
        writer = store.create_writer()
        records = [b"alpha", b"beta", b"gamma" * 30]
        writer.write_records(records)
        handle = writer.finish()
        assert handle.record_count == 3
        assert list(store.open_reader(handle)) == records

    def test_records_span_blocks(self):
        _, store = make_store(block_size=128)
        writer = store.create_writer()
        big = bytes(range(256)) * 3  # 768 bytes across many 128B blocks
        writer.write_record(big)
        writer.write_record(b"after")
        handle = writer.finish()
        reader = store.open_reader(handle)
        assert reader.read_record() == big
        assert reader.read_record() == b"after"
        assert reader.read_record() is None

    def test_empty_records_allowed(self):
        _, store = make_store()
        writer = store.create_writer()
        writer.write_record(b"")
        writer.write_record(b"x")
        handle = writer.finish()
        assert list(store.open_reader(handle)) == [b"", b"x"]

    def test_finish_twice_fails(self):
        _, store = make_store()
        writer = store.create_writer()
        writer.write_record(b"x")
        writer.finish()
        with pytest.raises(RunError):
            writer.finish()

    def test_write_after_finish_fails(self):
        _, store = make_store()
        writer = store.create_writer()
        writer.finish()
        with pytest.raises(RunError):
            writer.write_record(b"x")

    def test_handle_block_count_matches_stream(self):
        device, store = make_store(block_size=128)
        writer = store.create_writer()
        for index in range(50):
            writer.write_record(bytes([index]) * 20)
        handle = writer.finish()
        expected_blocks = -(-handle.stream_bytes // device.block_size)
        assert handle.block_count == expected_blocks

    def test_empty_run(self):
        _, store = make_store()
        handle = store.create_writer().finish()
        assert handle.record_count == 0
        assert list(store.open_reader(handle)) == []


class TestResume:
    def test_tell_and_resume_mid_run(self):
        _, store = make_store(block_size=128)
        writer = store.create_writer()
        records = [bytes([i]) * 40 for i in range(10)]
        writer.write_records(records)
        handle = writer.finish()

        reader = store.open_reader(handle)
        for _ in range(4):
            reader.read_record()
        offset = reader.tell()
        resumed = store.open_reader(handle, offset=offset)
        assert list(resumed) == records[4:]

    def test_resume_rereads_the_block(self):
        """Lemma 4.12's access pattern: resuming costs one block read."""
        device, store = make_store(block_size=128)
        writer = store.create_writer()
        writer.write_records([bytes([i]) * 40 for i in range(10)])
        handle = writer.finish()

        reader = store.open_reader(handle, category="probe")
        reader.read_record()
        offset = reader.tell()
        before = device.stats.by_category["probe"].reads
        resumed = store.open_reader(handle, offset=offset, category="probe")
        resumed.read_record()
        after = device.stats.by_category["probe"].reads
        assert after == before + 1  # the resume block was read again

    def test_bad_offset_rejected(self):
        _, store = make_store()
        writer = store.create_writer()
        writer.write_record(b"x")
        handle = writer.finish()
        with pytest.raises(RunError):
            store.open_reader(handle, offset=handle.stream_bytes + 1)


class TestStore:
    def test_get_unknown_run_fails(self):
        _, store = make_store()
        with pytest.raises(RunError):
            store.get(99)

    def test_free_releases_blocks(self):
        device, store = make_store()
        writer = store.create_writer()
        writer.write_record(b"x" * 200)
        handle = writer.finish()
        occupied = device.occupied_blocks
        store.free(handle)
        assert device.occupied_blocks < occupied
        with pytest.raises(RunError):
            store.get(handle.run_id)

    def test_total_run_blocks(self):
        _, store = make_store(block_size=128)
        handles = []
        for size in (1, 5, 9):
            writer = store.create_writer()
            for index in range(size):
                writer.write_record(bytes([index]) * 60)
            handles.append(writer.finish())
        assert store.total_run_blocks() == sum(
            handle.block_count for handle in handles
        )

    def test_reads_counted_under_category(self):
        device, store = make_store()
        writer = store.create_writer("my_write")
        writer.write_record(b"x" * 300)
        handle = writer.finish()
        list(store.open_reader(handle, category="my_read"))
        assert device.stats.by_category["my_write"].writes == 2
        assert device.stats.by_category["my_read"].reads == 2


class TestReadaheadClamp:
    """Adaptive readahead never charges reads past end-of-run."""

    def _make_run(self, nrecords=8):
        device, store = make_store(block_size=128)
        writer = store.create_writer()
        # 60-byte payloads frame to 64 bytes: 2 records per 128B block.
        writer.write_records(bytes([i]) * 60 for i in range(nrecords))
        handle = writer.finish()
        return device, store, handle

    def _attach_pool(self, device, store, capacity=8):
        from repro.io import BufferPool

        store.attach_pool(BufferPool(device, capacity))

    def test_readahead_clamped_at_construction(self):
        device, store, handle = self._make_run()
        self._attach_pool(device, store)
        reader = store.open_reader(handle, readahead=100)
        assert reader._readahead == handle.block_count

    def test_oversized_readahead_charges_exactly_block_count(self):
        device, store, handle = self._make_run()
        self._attach_pool(device, store)
        before = device.stats.snapshot()
        records = list(store.open_reader(handle, readahead=100))
        assert len(records) == 8
        delta = device.stats.since(before)
        # One read per run block, not one per readahead slot: the extent
        # is clamped at the run's end, so nothing past it is touched.
        assert delta.total_reads == handle.block_count

    def test_tail_resume_reads_only_remaining_blocks(self):
        device, store, handle = self._make_run()
        # Probe unpooled so the pool starts cold for the resumed reader.
        probe = store.open_reader(handle, readahead=0)
        for _ in range(5):
            probe.read_record()
        offset = probe.tell()  # inside block 2 of 4
        self._attach_pool(device, store)
        before = device.stats.snapshot()
        rest = list(store.open_reader(handle, offset=offset, readahead=100))
        assert len(rest) == 3
        delta = device.stats.since(before)
        assert delta.total_reads == 2  # blocks 2 and 3, nothing beyond


class TestHypothesisRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(
        records=st.lists(st.binary(max_size=300), max_size=80),
        block_size=st.sampled_from([64, 128, 256]),
        resume_at=st.integers(min_value=0, max_value=80),
    )
    def test_round_trip_and_resume(self, records, block_size, resume_at):
        _, store = make_store(block_size=block_size)
        writer = store.create_writer()
        writer.write_records(records)
        handle = writer.finish()
        assert list(store.open_reader(handle)) == records

        resume_at = min(resume_at, len(records))
        reader = store.open_reader(handle)
        for _ in range(resume_at):
            reader.read_record()
        offset = reader.tell()
        assert list(store.open_reader(handle, offset=offset)) == records[
            resume_at:
        ]
