"""Tests for the SortSpec clause mini-language."""

import pytest

from repro.cli import main
from repro.errors import SortSpecError
from repro.keys import (
    ByAttribute,
    ByAttributes,
    ByChildPath,
    ByTag,
    ByText,
    DocumentOrder,
    SortSpec,
)


class TestParsing:
    def test_default_and_tag_rules(self):
        spec = SortSpec.parse("*=@name, employee=@ID")
        assert isinstance(spec.default, ByAttribute)
        assert spec.default.attribute == "name"
        assert spec.rule_for("employee").attribute == "ID"

    def test_bare_expression_sets_default(self):
        spec = SortSpec.parse("@name")
        assert spec.default.attribute == "name"

    def test_text_tag_document_functions(self):
        spec = SortSpec.parse("a=text(), b=tag(), c=document()")
        assert isinstance(spec.rule_for("a"), ByText)
        assert isinstance(spec.rule_for("b"), ByTag)
        assert isinstance(spec.rule_for("c"), DocumentOrder)

    def test_child_path(self):
        spec = SortSpec.parse("employee=personalInfo/name/lastName")
        rule = spec.rule_for("employee")
        assert isinstance(rule, ByChildPath)
        assert rule.steps() == ("personalInfo", "name", "lastName")

    def test_composite_attributes(self):
        spec = SortSpec.parse("sensor=@name+@value")
        rule = spec.rule_for("sensor")
        assert isinstance(rule, ByAttributes)
        assert rule.attributes == ("name", "value")

    def test_whitespace_tolerant(self):
        spec = SortSpec.parse("  *=@name ,  employee = @ID  ")
        assert spec.rule_for("employee").attribute == "ID"

    def test_empty_clauses_ignored(self):
        spec = SortSpec.parse("*=@name,,")
        assert spec.default.attribute == "name"

    @pytest.mark.parametrize(
        "bad", ["a=@", "a=+@x", "a=bogus()", "a="]
    )
    def test_bad_expressions_rejected(self, bad):
        with pytest.raises(SortSpecError):
            SortSpec.parse(bad)

    def test_parsed_spec_sorts_like_hand_built(self, store):
        from repro.baselines import sort_element
        from repro.core import nexsort
        from repro.generators import figure1_d1
        from repro.xml import Document

        parsed = SortSpec.parse("*=@name, employee=@ID")
        doc = Document.from_element(store, figure1_d1())
        result, _ = nexsort(doc, parsed, memory_blocks=8)
        hand_built = SortSpec.by_attribute("name", employee="ID")
        assert result.to_element() == sort_element(
            figure1_d1(), hand_built
        )


class TestCLISpecOption:
    def test_spec_flag_drives_the_sort(self, tmp_path, capsys):
        from repro.generators import figure1_d1
        from repro.xml import Element, element_to_string

        path = tmp_path / "d1.xml"
        path.write_text(element_to_string(figure1_d1()))
        code = main(
            [
                "sort", str(path),
                "--spec", "*=@name, employee=@ID",
                "--memory", "8",
            ]
        )
        assert code == 0
        tree = Element.parse(capsys.readouterr().out)
        assert [r.attrs["name"] for r in tree.find_all("region")] == [
            "AC",
            "NE",
        ]

    def test_spec_with_subtree_expression_via_nexsort(self, tmp_path, capsys):
        path = tmp_path / "doc.xml"
        path.write_text(
            "<r><item><k>b</k></item><item><k>a</k></item></r>"
        )
        code = main(
            ["sort", str(path), "--spec", "item=k", "--memory", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.index("<k>a</k>") < out.index("<k>b</k>")
