"""Direct unit tests for the graceful-degeneration internals."""

import pytest

from repro.core.flat import (
    ChildGroup,
    decode_group,
    encode_group,
    group_sort_key,
    groups_from_region,
    split_region,
    write_partial_run,
)
from repro.errors import CodecError
from repro.io import BlockDevice, RunStore
from repro.xml import TokenCodec
from repro.xml.tokens import (
    EndTag,
    RunPointer,
    StartTag,
    Text,
    number_key,
)


def region_tokens():
    """Two complete children and a loose text, as popped off the stack."""
    return [
        Text("frame text"),
        StartTag("a", key=number_key(2), pos=1),
        Text("inner"),
        EndTag("a", pos=1),
        RunPointer(
            run_id=3, key=number_key(1), pos=2, element_count=5,
            payload_bytes=60,
        ),
    ]


class TestSplitRegion:
    def test_plain_split(self):
        texts, children = split_region(region_tokens(), compact=False)
        assert texts == ["frame text"]
        assert len(children) == 2
        assert isinstance(children[0][0], StartTag)
        assert isinstance(children[1][0], RunPointer)

    def test_nested_children_stay_grouped(self):
        tokens = [
            StartTag("a", key=number_key(1), pos=1),
            StartTag("b", pos=2),
            EndTag("b", pos=2),
            EndTag("a", pos=1),
        ]
        _texts, children = split_region(tokens, compact=False)
        assert len(children) == 1
        assert len(children[0]) == 4

    def test_compact_split_uses_levels(self):
        tokens = [
            Text("frame", level=2),
            StartTag("a", key=number_key(2), pos=1, level=3),
            Text("inner", level=3),
            StartTag("b", pos=2, level=4),
            StartTag("c", key=number_key(9), pos=3, level=3),
        ]
        texts, children = split_region(tokens, compact=True)
        assert texts == ["frame"]
        assert len(children) == 2
        assert len(children[0]) == 3  # a, its text, b

    def test_open_child_rejected(self):
        tokens = [StartTag("a", pos=1)]  # no matching end
        with pytest.raises(CodecError):
            split_region(tokens, compact=False)


class TestGroupCodec:
    def test_round_trip(self):
        group = ChildGroup(
            key=number_key(7),
            pos=12,
            units=3,
            real=9,
            token_bytes=[b"one", b"two"],
        )
        decoded = decode_group(encode_group(group))
        assert decoded.key == group.key
        assert decoded.pos == group.pos
        assert decoded.units == group.units
        assert decoded.real == group.real
        assert decoded.token_bytes == group.token_bytes

    def test_sort_key_reads_header_only(self):
        group = ChildGroup(number_key(7), 12, 1, 1, [b"payload"])
        assert group_sort_key(encode_group(group)) == (number_key(7), 12)


class TestGroupsFromRegion:
    def test_groups_sorted_by_key(self):
        device = BlockDevice(block_size=256)
        codec = TokenCodec()
        texts, groups = groups_from_region(
            region_tokens(), False, 2, None, codec, device.stats
        )
        assert texts == ["frame text"]
        assert [g.key for g in groups] == [number_key(1), number_key(2)]
        # The pointer child contributes its run's element count.
        assert groups[0].real == 5
        assert groups[1].real == 1

    def test_partial_run_round_trip(self):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        codec = TokenCodec()
        _texts, groups = groups_from_region(
            region_tokens(), False, 2, None, codec, device.stats
        )
        handle = write_partial_run(store, groups)
        decoded = [
            decode_group(record)
            for record in store.open_reader(handle)
        ]
        assert [g.key for g in decoded] == [g.key for g in groups]

    def test_child_subtrees_internally_sorted(self):
        device = BlockDevice(block_size=256)
        codec = TokenCodec()
        tokens = [
            StartTag("parent", key=number_key(1), pos=1),
            StartTag("x", key=number_key(9), pos=2),
            EndTag("x", pos=2),
            StartTag("x", key=number_key(3), pos=3),
            EndTag("x", pos=3),
            EndTag("parent", pos=1),
        ]
        _texts, groups = groups_from_region(
            tokens, False, 2, None, codec, device.stats
        )
        decoded = [codec.decode(b) for b in groups[0].token_bytes]
        inner_tags = [
            t.tag for t in decoded if isinstance(t, StartTag)
        ]
        assert inner_tags == ["parent", "x", "x"]
        # Sorting happened: the serialized group has the x's reordered.
        # Verify by rebuilding and checking nothing is lost.
        assert sum(isinstance(t, EndTag) for t in decoded) == 3
