"""Tests for the incremental (streaming) XML tokenizer."""

from io import StringIO

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XMLSyntaxError
from repro.xml import (
    Document,
    element_to_string,
    parse_events,
    parse_events_incremental,
)

from .conftest import random_tree


def incremental(text: str, chunk: int = 7, **kwargs):
    return list(
        parse_events_incremental(
            StringIO(text), chunk_chars=chunk, **kwargs
        )
    )


SAMPLES = [
    "<a/>",
    "<a></a>",
    '<a x="1" y="two words"><b/>text<c>deep</c></a>',
    "<a><!-- comment --><b/><![CDATA[raw <stuff>]]></a>",
    '<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><a>t</a>',
    "<a>&amp;&lt;&#65;</a>",
    '<ns:tag attr="v&quot;q"/>',
    "<a>" + "x" * 5000 + "</a>",  # text run far larger than a chunk
    "<a " + " ".join(f'k{i}="v{i}"' for i in range(50)) + "/>",
]


class TestEquivalenceWithOneShotParser:
    @pytest.mark.parametrize("xml", SAMPLES)
    @pytest.mark.parametrize("chunk", [3, 16, 1024])
    def test_same_events(self, xml, chunk):
        assert incremental(xml, chunk) == list(parse_events(xml))

    @pytest.mark.parametrize("chunk", [5, 64])
    def test_random_documents(self, chunk):
        for seed in range(6):
            tree = random_tree(seed, depth=4, max_fanout=4,
                               text_leaves=True)
            text = element_to_string(tree, indent="  ")
            assert incremental(text, chunk) == list(parse_events(text))

    def test_whitespace_preservation_option(self):
        xml = "<a> <b/> </a>"
        assert incremental(xml, 4, strip_whitespace=False) == list(
            parse_events(xml, strip_whitespace=False)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100),
        chunk=st.integers(min_value=2, max_value=200),
    )
    def test_chunk_size_never_changes_the_events(self, seed, chunk):
        tree = random_tree(seed, depth=3, max_fanout=4, text_leaves=True)
        text = element_to_string(tree)
        assert incremental(text, chunk) == list(parse_events(text))


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "<a>",
            "</a>",
            "<a></b>",
            "<a/><b/>",
            "text only",
            "<a><!-- unterminated",
            "<a><![CDATA[open",
            "",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XMLSyntaxError):
            incremental(bad)

    def test_construct_spanning_chunks_still_errors_cleanly(self):
        with pytest.raises(XMLSyntaxError):
            incremental('<aaaa bbbb="cccc', chunk=2)


class TestFromFile:
    def test_document_from_file(self, tmp_path, store):
        tree = random_tree(9, depth=4, max_fanout=4, text_leaves=True)
        path = tmp_path / "doc.xml"
        path.write_text(element_to_string(tree, indent="  "))
        doc = Document.from_file(store, str(path), chunk_chars=64)
        assert doc.to_element() == tree

    def test_from_file_matches_from_string(self, tmp_path, store):
        tree = random_tree(10, depth=3, max_fanout=5)
        text = element_to_string(tree)
        path = tmp_path / "doc.xml"
        path.write_text(text)
        via_file = Document.from_file(store, str(path))
        via_string = Document.from_string(store, text)
        assert via_file.to_element() == via_string.to_element()
        assert via_file.element_count == via_string.element_count
