"""Lease lifecycle tests: carving, release edge cases, bit-identity.

The :class:`~repro.io.lease.ResourceLease` refactor replaces the ambient
``MemoryBudget``/``BlockDevice`` handles a sorter used to own with a
slice carved from one shared :class:`~repro.io.lease.ResourcePool`.
These tests pin the lifecycle edges (double release, release with
pinned cache blocks, exhaustion mid-phase) and the refactor's central
promise: a single job run on a lease is bit-identical - counters and
trace - to the same job on the old ambient handles.
"""

import pytest

from repro.core import nexsort
from repro.errors import (
    DeviceError,
    MemoryBudgetExceeded,
    SortSpecError,
)
from repro.generators import level_fanout_events
from repro.io import BlockDevice, BufferPool, ResourcePool, RunStore
from repro.keys import ByAttribute, SortSpec
from repro.obs import Tracer
from repro.xml.document import Document

SPEC = SortSpec(default=ByAttribute("name"))
BLOCK_SIZE = 512


def make_document(store, seed=3):
    return Document.from_events(
        store, level_fanout_events([4, 4, 4], seed=seed)
    )


class TestCarving:
    def test_lease_carves_from_the_pool(self):
        pool = ResourcePool(20, block_size=BLOCK_SIZE)
        lease = pool.lease(8, tenant="a")
        assert pool.available_blocks == 12
        assert lease.budget.total_blocks == 8
        lease.release()
        assert pool.available_blocks == 20

    def test_lease_exhaustion(self):
        pool = ResourcePool(10, block_size=BLOCK_SIZE)
        pool.lease(8, tenant="a")
        with pytest.raises(MemoryBudgetExceeded, match="lease:a"):
            pool.lease(4, tenant="b")

    def test_empty_lease_rejected(self):
        pool = ResourcePool(10, block_size=BLOCK_SIZE)
        with pytest.raises(MemoryBudgetExceeded):
            pool.lease(0, tenant="a")

    def test_context_manager_releases(self):
        pool = ResourcePool(10, block_size=BLOCK_SIZE)
        with pool.lease(6, tenant="a"):
            assert pool.available_blocks == 4
        assert pool.available_blocks == 10


class TestReleaseEdges:
    def test_double_release_is_a_noop(self):
        pool = ResourcePool(10, block_size=BLOCK_SIZE)
        lease = pool.lease(6, tenant="a")
        lease.release()
        lease.release()
        assert lease.released
        assert pool.available_blocks == 10

    def test_release_with_pinned_blocks_raises(self):
        pool = ResourcePool(12, block_size=BLOCK_SIZE)
        lease = pool.lease(8, tenant="a")
        start = lease.device.allocate(4)
        lease.device.write_block(start, b"payload", "setup")
        cache = BufferPool(
            lease.device, 2, budget=lease.budget, owner="cache"
        )
        lease.store.attach_pool(cache)
        cache.read_block(start, "setup")
        assert cache.pin(start)
        with pytest.raises(DeviceError, match="pinned"):
            lease.release()
        # Unpinning makes the release legal and returns everything.
        cache.unpin(start)
        lease.release()
        assert pool.available_blocks == 12

    def test_exhaustion_mid_phase(self):
        # A squatter reservation inside the lease leaves the sorter too
        # little memory mid-run; the failure is the budget's, loud, not
        # a silent overdraw of the shared pool.
        pool = ResourcePool(24, block_size=BLOCK_SIZE)
        lease = pool.lease(24, tenant="a")
        lease.budget.reserve(22, "squatter")
        document = make_document(lease.store)
        with pytest.raises(MemoryBudgetExceeded):
            nexsort(document, SPEC, memory_blocks=24, lease=lease)
        lease.release()
        assert pool.available_blocks == 24

    def test_grant_must_match_sorter_config(self):
        pool = ResourcePool(24, block_size=BLOCK_SIZE)
        lease = pool.lease(12, tenant="a")
        document = make_document(lease.store)
        with pytest.raises(SortSpecError, match="lease grants 12"):
            nexsort(document, SPEC, memory_blocks=24, lease=lease)


class TestBitIdentity:
    def test_leased_run_matches_ambient_run(self):
        # Ambient: the pre-lease world - private device, private budget.
        device = BlockDevice(block_size=BLOCK_SIZE)
        tracer = Tracer(device.stats)
        store = RunStore(device)
        document = make_document(store)
        output, report = nexsort(
            document, SPEC, memory_blocks=16, tracer=tracer
        )
        ambient_text = output.to_string()
        ambient_counters = device.stats.snapshot().counter_totals()
        ambient_phases = tracer.finish().phase_breakdown()

        # Leased: same job, same grant, carved from a shared pool.
        pool = ResourcePool(32, block_size=BLOCK_SIZE)
        lease = pool.lease(16, tenant="a")
        leased_doc = make_document(lease.store)
        leased_out, _ = nexsort(
            leased_doc, SPEC, memory_blocks=16,
            tracer=lease.tracer, lease=lease,
        )
        assert leased_out.to_string() == ambient_text
        assert lease.snapshot().counter_totals() == ambient_counters
        assert lease.tracer.finish().phase_breakdown() == ambient_phases

    def test_tenant_counters_tile_to_pool_totals(self):
        pool = ResourcePool(40, block_size=BLOCK_SIZE)
        snapshots = []
        for index, tenant in enumerate(["a", "b"]):
            lease = pool.lease(16, tenant=tenant, trace=False)
            document = make_document(lease.store, seed=index)
            nexsort(document, SPEC, memory_blocks=16, lease=lease)
            snapshots.append(lease.snapshot())
            lease.release()
        total = snapshots[0].plus(snapshots[1])
        assert total.counter_totals() == (
            pool.stats.snapshot().counter_totals()
        )

    def test_events_cover_the_leases_elapsed_time(self):
        pool = ResourcePool(16, block_size=BLOCK_SIZE)
        lease = pool.lease(16, tenant="a", trace=False)
        document = make_document(lease.store)
        nexsort(document, SPEC, memory_blocks=16, lease=lease)
        replayed = sum(seconds for _kind, seconds in lease.events)
        assert replayed == pytest.approx(
            lease.snapshot().elapsed_seconds(), abs=1e-9
        )
