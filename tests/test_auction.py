"""Tests for the XMark-style auction workload generator."""

from repro.baselines import is_fully_sorted, sort_element
from repro.core import nexsort
from repro.generators import auction_events, auction_spec
from repro.io import BlockDevice, RunStore
from repro.xml import Document, Element


def load(events, block_size=512):
    device = BlockDevice(block_size=block_size)
    store = RunStore(device)
    return Document.from_events(store, events)


class TestGenerator:
    def test_structure(self):
        tree = Element.from_events(auction_events(5, seed=1))
        assert tree.tag == "site"
        regions = tree.find_all("region")
        assert len(regions) == 6
        auctions = regions[0].find_all("open_auction")
        assert len(auctions) == 5
        first = auctions[0]
        assert first.find("seller") is not None
        assert first.find("item") is not None

    def test_deterministic_by_seed(self):
        a = Element.from_events(auction_events(4, seed=9))
        b = Element.from_events(auction_events(4, seed=9))
        c = Element.from_events(auction_events(4, seed=10))
        assert a == b
        assert a != c

    def test_skewed_subtree_sizes(self):
        """Real catalogue data is skewed: auction subtrees vary in size."""
        tree = Element.from_events(auction_events(20, seed=3))
        sizes = {
            auction.element_count()
            for region in tree.find_all("region")
            for auction in region.find_all("open_auction")
        }
        assert len(sizes) > 3

    def test_mixed_depth_and_text(self):
        doc = load(auction_events(5, seed=2))
        assert doc.height >= 5
        assert doc.stats.text_count > 0

    def test_extra_regions_supported(self):
        tree = Element.from_events(auction_events(2, seed=1, regions=9))
        assert len(tree.find_all("region")) == 9


class TestSortingTheAuctionSite:
    def test_nexsort_matches_oracle(self):
        spec = auction_spec()
        doc = load(auction_events(6, seed=4))
        tree = doc.to_element()
        result, report = nexsort(doc, spec, memory_blocks=16)
        assert result.to_element() == sort_element(tree, spec)
        assert report.x >= 1

    def test_bids_ordered_by_amount(self):
        spec = auction_spec()
        doc = load(auction_events(6, seed=5, max_bids=6))
        result, _ = nexsort(doc, spec, memory_blocks=16)
        for region in result.to_element().find_all("region"):
            for auction in region.find_all("open_auction"):
                amounts = [
                    int(bid.attrs["amount"])
                    for bid in auction.find_all("bid")
                ]
                assert amounts == sorted(amounts)

    def test_fully_sorted_under_its_spec(self):
        spec = auction_spec()
        doc = load(auction_events(5, seed=6))
        result, _ = nexsort(doc, spec, memory_blocks=16)
        assert is_fully_sorted(result.to_element(), spec)
