"""Tests for the k-way structural merge."""

import pytest

from repro.baselines import is_fully_sorted
from repro.core import nexsort
from repro.errors import MergeError
from repro.generators import figure1_spec, personnel_events
from repro.io import BlockDevice, RunStore
from repro.keys import SortSpec
from repro.merge import kway_merge, structural_merge
from repro.xml import Document, Element

from .conftest import random_tree


def fresh_store():
    device = BlockDevice(block_size=256)
    return device, RunStore(device)


def sorted_doc(store, tree, spec, memory=8):
    doc = Document.from_element(store, tree)
    result, _ = nexsort(doc, spec, memory_blocks=memory)
    return result


class TestKWaySemantics:
    def test_two_way_matches_binary_merge(self, spec):
        _device, store = fresh_store()
        left = sorted_doc(store, random_tree(1, depth=3, max_fanout=4), spec)
        right = sorted_doc(store, random_tree(2, depth=3, max_fanout=4), spec)
        kway, _ = kway_merge([left, right], spec)
        binary, _ = structural_merge(left, right, spec)
        assert kway.to_element() == binary.to_element()

    def test_three_way_matches_iterated_binary(self, spec):
        _device, store = fresh_store()
        docs = [
            sorted_doc(
                store, random_tree(seed, depth=3, max_fanout=4), spec
            )
            for seed in range(3)
        ]
        kway, _ = kway_merge(docs, spec)
        step, _ = structural_merge(docs[0], docs[1], spec)
        iterated, _ = structural_merge(step, docs[2], spec)
        assert (
            kway.to_element().unordered_canonical()
            == iterated.to_element().unordered_canonical()
        )

    def test_splits_reunite(self, spec):
        """Splitting a document's children 4 ways and k-way merging the
        sorted parts reproduces the sorted whole."""
        from repro.baselines import sort_element

        _device, store = fresh_store()
        tree = random_tree(5, depth=3, max_fanout=6)
        parts = []
        for index in range(4):
            part = Element(
                tree.tag, tree.attrs, tree.text, tree.children[index::4]
            )
            parts.append(sorted_doc(store, part, spec))
        merged, report = kway_merge(parts, spec)
        assert merged.to_element() == sort_element(tree, spec)
        assert report.input_count == 4

    def test_single_document_is_identity(self, spec):
        _device, store = fresh_store()
        doc = sorted_doc(store, random_tree(7, depth=3, max_fanout=4), spec)
        merged, _ = kway_merge([doc], spec)
        assert merged.to_element() == doc.to_element()

    def test_result_is_sorted(self, spec):
        _device, store = fresh_store()
        docs = [
            sorted_doc(
                store, random_tree(seed, depth=4, max_fanout=4), spec
            )
            for seed in range(4)
        ]
        merged, _ = kway_merge(docs, spec)
        assert is_fully_sorted(merged.to_element(), spec)

    def test_earlier_inputs_win_attribute_conflicts(self, spec):
        _device, store = fresh_store()
        docs = [
            sorted_doc(
                store, Element.parse(f'<r name="k" v="{index}"/>'), spec
            )
            for index in range(3)
        ]
        merged, _ = kway_merge(docs, spec)
        assert merged.to_element().attrs["v"] == "0"

    def test_first_nonempty_text_wins(self, spec):
        _device, store = fresh_store()
        docs = [
            sorted_doc(store, Element.parse('<r name="k"></r>'), spec),
            sorted_doc(store, Element.parse('<r name="k">two</r>'), spec),
            sorted_doc(store, Element.parse('<r name="k">three</r>'), spec),
        ]
        merged, _ = kway_merge(docs, spec)
        assert merged.to_element().text == "two"


class TestSinglePass:
    def test_every_input_block_read_once(self):
        spec = figure1_spec()
        _device, store = fresh_store()
        docs = []
        for seed in range(3):
            raw = Document.from_events(
                store, personnel_events(2, 2, 6, seed=seed)
            )
            result, _ = nexsort(raw, spec, memory_blocks=8)
            docs.append(result)
        _merged, report = kway_merge(docs, spec)
        for index, doc in enumerate(docs):
            assert (
                report.stats.category_total(f"merge_scan_{index}")
                == doc.block_count
            )


class TestValidation:
    def test_empty_input_rejected(self, spec):
        with pytest.raises(MergeError):
            kway_merge([], spec)

    def test_mixed_devices_rejected(self, spec):
        _d1, store1 = fresh_store()
        _d2, store2 = fresh_store()
        a = sorted_doc(store1, Element.parse("<r/>"), spec)
        b = sorted_doc(store2, Element.parse("<r/>"), spec)
        with pytest.raises(MergeError):
            kway_merge([a, b], spec)

    def test_mismatched_roots_rejected(self, spec):
        _device, store = fresh_store()
        a = sorted_doc(store, Element.parse("<r/>"), spec)
        b = sorted_doc(store, Element.parse("<q/>"), spec)
        with pytest.raises(MergeError):
            kway_merge([a, b], spec)


class TestKWayProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        ways=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_disjoint_split_reunites(self, ways, seed):
        """Splitting any document's children k ways and k-way merging the
        sorted parts always reproduces the sorted whole."""
        from repro.baselines import sort_element
        from repro.keys import ByAttribute, SortSpec

        spec = SortSpec(default=ByAttribute("name"))
        tree = random_tree(seed, depth=3, max_fanout=5)
        _device, store = fresh_store()
        parts = []
        for index in range(ways):
            part = Element(
                tree.tag, tree.attrs, tree.text,
                tree.children[index::ways],
            )
            parts.append(sorted_doc(store, part, spec))
        merged, _report = kway_merge(parts, spec)
        assert merged.to_element() == sort_element(tree, spec)
