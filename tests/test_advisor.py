"""Tests for workload profiling and algorithm recommendation."""

from repro.analysis import profile_document, recommend
from repro.generators import level_fanout_events
from repro.io import BlockDevice, RunStore
from repro.xml import Document, Element

from .conftest import flat_tree, random_tree


def load(events_or_tree, block_size=256):
    device = BlockDevice(block_size=block_size)
    store = RunStore(device)
    if isinstance(events_or_tree, Element):
        return Document.from_element(store, events_or_tree)
    return Document.from_events(store, events_or_tree)


class TestProfile:
    def test_counts_match_document(self):
        doc = load(level_fanout_events([5, 4], seed=1))
        profile = profile_document(doc)
        assert profile.element_count == doc.element_count
        assert profile.height == doc.height
        assert profile.max_fanout == doc.max_fanout

    def test_flatness_of_flat_document(self):
        doc = load(flat_tree(100))
        profile = profile_document(doc)
        assert profile.flatness == 1.0
        assert profile.is_nearly_flat

    def test_flatness_of_deep_document(self):
        doc = load(level_fanout_events([5, 5, 5, 5], seed=2))
        profile = profile_document(doc)
        assert profile.flatness < 0.05
        assert not profile.is_nearly_flat

    def test_percentiles_ordered(self):
        doc = load(random_tree(3, depth=4, max_fanout=6))
        profile = profile_document(doc)
        assert profile.fanout_p50 <= profile.fanout_p95 <= profile.max_fanout

    def test_average_element_bytes_positive(self):
        doc = load(flat_tree(20))
        assert profile_document(doc).average_element_bytes > 0


class TestRecommendation:
    def test_hierarchical_gets_nexsort(self):
        doc = load(level_fanout_events([8, 8, 8], seed=3, pad_bytes=24))
        verdict = recommend(doc, memory_blocks=24)
        assert verdict.algorithm == "nexsort"
        assert verdict.threshold_bytes == 2 * 256
        assert verdict.rationale

    def test_flat_with_ample_memory_gets_merge_sort(self):
        doc = load(flat_tree(300))
        verdict = recommend(doc, memory_blocks=64)
        assert verdict.algorithm == "merge_sort"
        assert verdict.merge_sort_passes <= 2

    def test_flat_with_tight_memory_gets_degenerating_nexsort(self):
        doc = load(flat_tree(2000, pad=32))
        verdict = recommend(doc, memory_blocks=6)
        assert verdict.algorithm == "nexsort"
        assert verdict.flat_optimization

    def test_bounds_reported(self):
        doc = load(level_fanout_events([8, 8, 8], seed=4))
        verdict = recommend(doc, memory_blocks=24)
        assert verdict.lower_bound_ios > 0
        assert (
            verdict.predicted_nexsort_ios >= verdict.lower_bound_ios - 1e-9
        )
        assert verdict.predicted_merge_sort_ios > 0

    def test_recommendation_actually_wins(self):
        """Following the advice beats the alternative on both regimes."""
        from repro.baselines import external_merge_sort
        from repro.core import nexsort
        from repro.keys import ByAttribute, SortSpec

        spec = SortSpec(default=ByAttribute("name"))
        for generator, memory in (
            (lambda: level_fanout_events([11, 11, 11], seed=5,
                                         pad_bytes=24), 24),
            (lambda: level_fanout_events([1500], seed=5, pad_bytes=24), 64),
        ):
            probe = load(generator(), block_size=512)
            verdict = recommend(probe, memory_blocks=memory)

            doc = load(generator(), block_size=512)
            _out, nreport = nexsort(
                doc,
                spec,
                memory_blocks=memory,
                flat_optimization=verdict.flat_optimization,
            )
            doc = load(generator(), block_size=512)
            _out, mreport = external_merge_sort(
                doc, spec, memory_blocks=memory
            )
            if verdict.algorithm == "nexsort":
                assert (
                    nreport.simulated_seconds < mreport.simulated_seconds
                )
            else:
                assert (
                    mreport.simulated_seconds < nreport.simulated_seconds
                )
