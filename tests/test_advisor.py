"""Tests for workload profiling and algorithm recommendation."""

import pytest

from repro.analysis import (
    DocumentProfile,
    nearest_rank_percentile,
    profile_document,
    recommend,
)
from repro.errors import ReproError
from repro.generators import level_fanout_events
from repro.generators.level_fanout import level_fanout_element_count
from repro.io import BlockDevice, RunStore
from repro.xml import Document, Element

from .conftest import flat_tree, random_tree


def load(events_or_tree, block_size=256):
    device = BlockDevice(block_size=block_size)
    store = RunStore(device)
    if isinstance(events_or_tree, Element):
        return Document.from_element(store, events_or_tree)
    return Document.from_events(store, events_or_tree)


class TestNearestRankPercentile:
    def test_empty_is_zero(self):
        assert nearest_rank_percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert nearest_rank_percentile([7], 0.01) == 7.0
        assert nearest_rank_percentile([7], 0.50) == 7.0
        assert nearest_rank_percentile([7], 0.99) == 7.0

    def test_even_count_hand_computed(self):
        # Nearest rank on [10, 20, 30, 40]: p50 -> ceil(0.5*4)=rank 2
        # -> 20 (the old int-truncation picked 30), p95 -> rank 4 -> 40.
        values = [10, 20, 30, 40]
        assert nearest_rank_percentile(values, 0.50) == 20.0
        assert nearest_rank_percentile(values, 0.25) == 10.0
        assert nearest_rank_percentile(values, 0.75) == 30.0
        assert nearest_rank_percentile(values, 0.95) == 40.0

    def test_odd_count_hand_computed(self):
        # [1, 2, 3, 4, 5]: p50 -> ceil(2.5)=rank 3 -> 3; p95 -> rank 5.
        values = [1, 2, 3, 4, 5]
        assert nearest_rank_percentile(values, 0.50) == 3.0
        assert nearest_rank_percentile(values, 0.95) == 5.0
        assert nearest_rank_percentile(values, 0.20) == 1.0

    def test_twenty_samples_p95_is_not_the_maximum(self):
        # The off-by-one this fix is about: p95 of 20 samples is the
        # 19th order statistic (rank ceil(0.95*20) = 19), not the max.
        values = list(range(1, 21))
        assert nearest_rank_percentile(values, 0.95) == 19.0
        assert nearest_rank_percentile(values, 1.00) == 20.0


class TestFromFanouts:
    def test_matches_generator_counts(self):
        shape = [4, 4, 4]
        profile = DocumentProfile.from_fanouts(shape, block_size=512)
        assert profile.element_count == level_fanout_element_count(shape)
        assert profile.height == len(shape) + 1
        assert profile.max_fanout == 4
        assert profile.level_subtree_elements[0] == profile.element_count

    def test_matches_measured_profile(self):
        shape = [5, 3, 2]
        doc = load(
            level_fanout_events(shape, seed=1, pad_bytes=0),
            block_size=512,
        )
        measured = profile_document(doc)
        analytic = DocumentProfile.from_fanouts(shape, block_size=512)
        assert analytic.element_count == measured.element_count
        assert analytic.height == measured.height
        assert analytic.max_fanout == measured.max_fanout
        assert analytic.level_subtree_elements == pytest.approx(
            measured.level_subtree_elements
        )

    def test_rejects_bad_fanouts(self):
        with pytest.raises(ReproError):
            DocumentProfile.from_fanouts([])
        with pytest.raises(ReproError):
            DocumentProfile.from_fanouts([4, 0, 4])


class TestProfile:
    def test_counts_match_document(self):
        doc = load(level_fanout_events([5, 4], seed=1))
        profile = profile_document(doc)
        assert profile.element_count == doc.element_count
        assert profile.height == doc.height
        assert profile.max_fanout == doc.max_fanout

    def test_flatness_of_flat_document(self):
        doc = load(flat_tree(100))
        profile = profile_document(doc)
        assert profile.flatness == 1.0
        assert profile.is_nearly_flat

    def test_flatness_of_deep_document(self):
        doc = load(level_fanout_events([5, 5, 5, 5], seed=2))
        profile = profile_document(doc)
        assert profile.flatness < 0.05
        assert not profile.is_nearly_flat

    def test_percentiles_ordered(self):
        doc = load(random_tree(3, depth=4, max_fanout=6))
        profile = profile_document(doc)
        assert profile.fanout_p50 <= profile.fanout_p95 <= profile.max_fanout

    def test_average_element_bytes_positive(self):
        doc = load(flat_tree(20))
        assert profile_document(doc).average_element_bytes > 0


class TestRecommendation:
    def test_hierarchical_gets_nexsort(self):
        doc = load(level_fanout_events([8, 8, 8], seed=3, pad_bytes=24))
        verdict = recommend(doc, memory_blocks=24)
        assert verdict.algorithm == "nexsort"
        assert verdict.threshold_bytes == 2 * 256
        assert verdict.rationale

    def test_flat_with_ample_memory_gets_merge_sort(self):
        doc = load(flat_tree(300))
        verdict = recommend(doc, memory_blocks=64)
        assert verdict.algorithm == "merge_sort"
        assert verdict.merge_sort_passes <= 2

    def test_flat_with_tight_memory_gets_degenerating_nexsort(self):
        doc = load(flat_tree(2000, pad=32))
        verdict = recommend(doc, memory_blocks=6)
        assert verdict.algorithm == "nexsort"
        assert verdict.flat_optimization

    def test_explicit_block_size_matching_device_accepted(self):
        doc = load(level_fanout_events([8, 8], seed=3))
        explicit = recommend(doc, memory_blocks=24, block_size=256)
        defaulted = recommend(doc, memory_blocks=24)
        assert explicit.algorithm == defaulted.algorithm
        assert explicit.threshold_bytes == defaulted.threshold_bytes

    def test_zero_block_size_is_an_error_not_a_fallback(self):
        # The old `block_size or device.block_size` silently swallowed
        # an explicit 0; a falsy-but-provided size must be rejected.
        doc = load(level_fanout_events([8, 8], seed=3))
        with pytest.raises(ReproError, match="positive"):
            recommend(doc, memory_blocks=24, block_size=0)
        with pytest.raises(ReproError, match="positive"):
            recommend(doc, memory_blocks=24, block_size=-512)

    def test_mismatched_block_size_rejected(self):
        doc = load(level_fanout_events([8, 8], seed=3))
        with pytest.raises(ReproError, match="does not match"):
            recommend(doc, memory_blocks=24, block_size=4096)

    def test_bounds_reported(self):
        doc = load(level_fanout_events([8, 8, 8], seed=4))
        verdict = recommend(doc, memory_blocks=24)
        assert verdict.lower_bound_ios > 0
        assert (
            verdict.predicted_nexsort_ios >= verdict.lower_bound_ios - 1e-9
        )
        assert verdict.predicted_merge_sort_ios > 0

    def test_recommendation_actually_wins(self):
        """Following the advice beats the alternative on both regimes."""
        from repro.baselines import external_merge_sort
        from repro.core import nexsort
        from repro.keys import ByAttribute, SortSpec

        spec = SortSpec(default=ByAttribute("name"))
        for generator, memory in (
            (lambda: level_fanout_events([11, 11, 11], seed=5,
                                         pad_bytes=24), 24),
            (lambda: level_fanout_events([1500], seed=5, pad_bytes=24), 64),
        ):
            probe = load(generator(), block_size=512)
            verdict = recommend(probe, memory_blocks=memory)

            doc = load(generator(), block_size=512)
            _out, nreport = nexsort(
                doc,
                spec,
                memory_blocks=memory,
                flat_optimization=verdict.flat_optimization,
            )
            doc = load(generator(), block_size=512)
            _out, mreport = external_merge_sort(
                doc, spec, memory_blocks=memory
            )
            if verdict.algorithm == "nexsort":
                assert (
                    nreport.simulated_seconds < mreport.simulated_seconds
                )
            else:
                assert (
                    mreport.simulated_seconds < nreport.simulated_seconds
                )
