"""Unit and property tests for the binary token codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.xml import NameDictionary, TokenCodec
from repro.xml.codec import (
    decode_key_atom,
    encode_key_atom,
    is_pointer_record,
    read_varint,
    write_varint,
)
from repro.xml.tokens import (
    EndTag,
    MISSING_KEY,
    RunPointer,
    StartTag,
    Text,
    number_key,
    string_key,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 300, 2**20, 2**40]
    )
    def test_round_trip(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, pos = read_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            write_varint(bytearray(), -1)

    def test_truncated_raises(self):
        out = bytearray()
        write_varint(out, 2**20)
        with pytest.raises(CodecError):
            read_varint(bytes(out[:-1]) + b"\x80", len(out))

    @settings(max_examples=100, deadline=None)
    @given(value=st.integers(min_value=0, max_value=2**62))
    def test_round_trip_property(self, value):
        out = bytearray()
        write_varint(out, value)
        assert read_varint(bytes(out), 0) == (value, len(out))


class TestKeyAtoms:
    @pytest.mark.parametrize(
        "atom",
        [
            MISSING_KEY,
            number_key(0),
            number_key(-12.5),
            number_key(1e18),
            string_key(""),
            string_key("Durham"),
            string_key("ünïcode ✓"),
        ],
    )
    def test_round_trip(self, atom):
        out = bytearray()
        encode_key_atom(out, atom)
        decoded, pos = decode_key_atom(bytes(out), 0)
        assert decoded == atom
        assert pos == len(out)

    def test_atom_ordering_is_total(self):
        atoms = [MISSING_KEY, number_key(1), number_key(2), string_key("a")]
        assert sorted(atoms) == atoms  # missing < numbers < strings

    def test_unknown_kind_rejected(self):
        with pytest.raises(CodecError):
            decode_key_atom(b"\x07", 0)


def token_examples():
    return [
        StartTag("company"),
        StartTag("region", (("name", "NE"),)),
        StartTag(
            "employee",
            (("ID", "454"), ("pad", "x" * 50)),
            key=number_key(454),
            pos=7,
            level=4,
        ),
        Text(""),
        Text("Smith & Jones <esc>"),
        Text("levelled", level=3),
        EndTag("region"),
        EndTag("employee", key=string_key("k"), pos=12),
        RunPointer(run_id=9, element_count=42, payload_bytes=1000),
        RunPointer(
            run_id=0,
            key=number_key(3.5),
            pos=1,
            level=2,
            element_count=1,
            payload_bytes=10,
        ),
    ]


class TestTokenRoundTrip:
    @pytest.mark.parametrize("token", token_examples())
    def test_plain_round_trip(self, token):
        codec = TokenCodec()
        assert codec.decode(codec.encode(token)) == token

    @pytest.mark.parametrize("token", token_examples())
    def test_dictionary_round_trip(self, token):
        codec = TokenCodec(NameDictionary())
        assert codec.decode(codec.encode(token)) == token

    def test_dictionary_coding_is_smaller_for_repeated_names(self):
        plain = TokenCodec()
        coded = TokenCodec(NameDictionary())
        token = StartTag("averylongtagname", (("longattribute", "v"),))
        coded.encode(token)  # populate the dictionary
        assert len(coded.encode(token)) < len(plain.encode(token))

    def test_encoded_size_matches(self):
        codec = TokenCodec()
        for token in token_examples():
            assert codec.encoded_size(token) == len(codec.encode(token))

    def test_is_pointer_record(self):
        codec = TokenCodec()
        pointer = RunPointer(run_id=1)
        assert is_pointer_record(codec.encode(pointer))
        assert not is_pointer_record(codec.encode(StartTag("a")))
        assert not is_pointer_record(b"")

    def test_empty_record_rejected(self):
        with pytest.raises(CodecError):
            TokenCodec().decode(b"")

    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError):
            TokenCodec().decode(b"\x99")


@st.composite
def arbitrary_token(draw):
    name = st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
        min_size=1,
        max_size=10,
    )
    kind = draw(st.sampled_from(["start", "text", "end", "pointer"]))
    maybe_key = st.one_of(
        st.none(),
        st.builds(number_key, st.floats(allow_nan=False, allow_infinity=False)),
        st.builds(string_key, st.text(max_size=20)),
    )
    maybe_pos = st.one_of(st.none(), st.integers(0, 2**30))
    maybe_level = st.one_of(st.none(), st.integers(0, 1000))
    if kind == "text":
        return Text(draw(st.text(max_size=50)), level=draw(maybe_level))
    if kind == "end":
        return EndTag(draw(name), key=draw(maybe_key), pos=draw(maybe_pos))
    if kind == "pointer":
        return RunPointer(
            run_id=draw(st.integers(0, 2**30)),
            key=draw(maybe_key),
            pos=draw(maybe_pos),
            level=draw(maybe_level),
            element_count=draw(st.integers(0, 2**30)),
            payload_bytes=draw(st.integers(0, 2**30)),
        )
    attrs = draw(
        st.lists(
            st.tuples(name, st.text(max_size=20)),
            max_size=4,
            unique_by=lambda pair: pair[0],
        )
    )
    return StartTag(
        draw(name),
        tuple(attrs),
        key=draw(maybe_key),
        pos=draw(maybe_pos),
        level=draw(maybe_level),
    )


class TestHypothesisRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(token=arbitrary_token())
    def test_any_token_round_trips(self, token):
        codec = TokenCodec()
        assert codec.decode(codec.encode(token)) == token

    @settings(max_examples=80, deadline=None)
    @given(tokens=st.lists(arbitrary_token(), max_size=20))
    def test_shared_dictionary_round_trips_streams(self, tokens):
        names = NameDictionary()
        codec = TokenCodec(names)
        encoded = [codec.encode(token) for token in tokens]
        assert [codec.decode(record) for record in encoded] == tokens
