"""The run-formation / merge engine: kernels, formation modes, keys.

Covers the :mod:`repro.merge.engine` pieces in isolation (loser tree,
replacement selection, normalized keys) and the cross-kernel agreement
property: every combination of the engine knobs must produce output
element-for-element identical to the paper-faithful defaults and to the
in-memory oracle.
"""

from __future__ import annotations

import random
from math import ceil, log2

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import external_merge_sort, sort_element
from repro.baselines.merging import merge_pass
from repro.core import nexsort
from repro.errors import SortSpecError
from repro.io import BlockDevice, RunStore
from repro.keys import ByAttribute, SortSpec
from repro.merge.engine import (
    DEFAULT_MERGE_OPTIONS,
    LoserTree,
    MergeOptions,
    RunFormer,
    embed_key,
    embedded_key_of,
    normalized_path_key,
    strip_embedded_key,
)
from repro.xml import Document, Element
from repro.xml.tokens import KEY_NUMBER, KEY_STRING, MISSING_KEY

from .conftest import flat_tree, random_tree

SPEC = SortSpec(default=ByAttribute("name"))

ALL_OPTIONS = [
    MergeOptions(run_formation=formation, merge_kernel=kernel,
                 embedded_keys=embedded)
    for formation in ("load-sort", "replacement-selection")
    for kernel in ("heap", "loser-tree")
    for embedded in (False, True)
]


class TestMergeOptions:
    def test_defaults_are_paper_faithful(self):
        options = MergeOptions()
        assert options.is_default
        assert not options.replacement_selection
        assert not options.loser_tree
        assert not options.counted_comparisons
        assert options == DEFAULT_MERGE_OPTIONS

    def test_counted_accounting_rides_with_loser_tree(self):
        assert MergeOptions(merge_kernel="loser-tree").counted_comparisons
        assert not MergeOptions(
            run_formation="replacement-selection"
        ).counted_comparisons

    def test_unknown_run_formation_rejected(self):
        with pytest.raises(SortSpecError):
            MergeOptions(run_formation="quicksort")

    def test_unknown_merge_kernel_rejected(self):
        with pytest.raises(SortSpecError):
            MergeOptions(merge_kernel="btree")


def _pulls_from_lists(sources):
    def make(items):
        iterator = iter(items)

        def pull():
            for key in iterator:
                return key, (key, id(items))
            return None

        return pull

    return [make(items) for items in sources]


class TestLoserTree:
    def test_merges_sorted_sources(self):
        rng = random.Random(42)
        sources = [
            sorted(rng.randrange(1000) for _ in range(rng.randrange(80)))
            for _ in range(7)
        ]
        merged = [key for key, _rec in LoserTree(_pulls_from_lists(sources))]
        assert merged == sorted(key for items in sources for key in items)

    def test_comparison_bound(self):
        rng = random.Random(7)
        k = 5
        sources = [
            sorted(rng.randrange(1000) for _ in range(50)) for _ in range(k)
        ]
        stats = BlockDevice(block_size=256).stats
        merged = list(
            LoserTree(_pulls_from_lists(sources), stats=stats)
        )
        n = sum(len(items) for items in sources)
        assert len(merged) == n
        # Build costs at most k - 1 matches, each pop at most ceil(log2 k).
        assert stats.merge_comparisons <= (n + k) * ceil(log2(k))
        assert stats.merge_comparisons > 0

    def test_ties_break_by_source_index(self):
        sources = [[5, 5], [5, 5], [5, 5]]
        tagged = []
        for index, items in enumerate(sources):
            iterator = iter(items)
            tagged.append(
                (lambda it=iterator, i=index: next(
                    ((key, i) for key in it), None
                ))
            )
        out = [source for _key, source in LoserTree(tagged)]
        assert out == [0, 0, 1, 1, 2, 2]

    def test_single_and_empty_sources(self):
        single = [
            key for key, _r in LoserTree(_pulls_from_lists([[1, 2, 3]]))
        ]
        assert single == [1, 2, 3]
        assert list(LoserTree(_pulls_from_lists([[], [], []]))) == []
        mixed = [key for key, _r in LoserTree(_pulls_from_lists([[], [4]]))]
        assert mixed == [4]

    def test_exhaustion_callback_fires_once_per_source(self):
        drained = []
        tree = LoserTree(
            _pulls_from_lists([[1], [], [2, 3]]),
            on_exhausted=drained.append,
        )
        list(tree)
        assert sorted(drained) == [0, 1, 2]


def _read_run(store, handle):
    return list(store.open_reader(handle))


class TestRunFormer:
    def _form(self, store, pairs, capacity, **kwargs):
        former = RunFormer(
            store,
            capacity,
            MergeOptions(run_formation="replacement-selection", **kwargs),
        )
        for key, payload in pairs:
            former.add(key, payload)
        return former, former.finish()

    def test_replacement_selection_runs_are_sorted_and_complete(
        self, store
    ):
        rng = random.Random(3)
        pairs = [
            (rng.randrange(500), f"p{i:04d}".encode()) for i in range(400)
        ]
        former, runs = self._form(store, pairs, capacity=256)
        recovered = []
        for handle in runs:
            records = _read_run(store, handle)
            keys = [int(r[1:5]) for r in records]
            recovered.extend(records)
        assert sorted(recovered) == sorted(p for _k, p in pairs)
        assert former.run_lengths == [h.record_count for h in runs]

    def test_replacement_selection_beats_load_sort_on_random_input(
        self, store
    ):
        rng = random.Random(11)
        pairs = [(rng.random(), b"x" * 16) for _ in range(600)]
        _former, rs_runs = self._form(store, list(pairs), capacity=256)
        load_former = RunFormer(store, 256, MergeOptions())
        for key, payload in pairs:
            load_former.add(key, payload)
        load_runs = load_former.finish()
        assert len(rs_runs) < len(load_runs)

    def test_sorted_input_yields_one_run(self, store):
        pairs = [(index, b"y" * 8) for index in range(300)]
        _former, runs = self._form(store, pairs, capacity=128)
        assert len(runs) == 1
        assert runs[0].record_count == 300

    def test_single_record_run(self, store):
        former, runs = self._form(store, [(9, b"only")], capacity=64)
        assert len(runs) == 1
        assert runs[0].record_count == 1
        assert former.run_lengths == [1]
        assert _read_run(store, runs[0]) == [b"only"]

    def test_all_equal_keys_stay_stable_in_one_run(self, store):
        payloads = [f"r{i:03d}".encode() for i in range(200)]
        _former, runs = self._form(
            store, [(5, p) for p in payloads], capacity=128
        )
        assert len(runs) == 1
        assert _read_run(store, runs[0]) == payloads

    def test_embedded_keys_round_trip_through_runs(self, store):
        pairs = [(normalized_path_key(()), b"payload")]
        former = RunFormer(
            store,
            64,
            MergeOptions(
                run_formation="replacement-selection", embedded_keys=True
            ),
        )
        former.add(pairs[0][0], pairs[0][1])
        (handle,) = former.finish()
        (record,) = _read_run(store, handle)
        assert embedded_key_of(record) == pairs[0][0]
        assert strip_embedded_key(record) == b"payload"


_atoms = st.one_of(
    st.just(MISSING_KEY),
    st.builds(
        lambda v: (KEY_NUMBER, v),
        st.floats(allow_nan=False),
    ),
    st.builds(lambda v: (KEY_STRING, v), st.text(max_size=6)),
)
_components = st.tuples(_atoms, st.integers(min_value=0, max_value=2**40))
_paths = st.lists(_components, max_size=4).map(tuple)


class TestNormalizedKeys:
    @settings(
        max_examples=300,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(left=_paths, right=_paths)
    def test_byte_order_matches_tuple_order(self, left, right):
        left_bytes = normalized_path_key(left)
        right_bytes = normalized_path_key(right)
        assert (left_bytes < right_bytes) == (left < right)
        assert (left_bytes == right_bytes) == (
            normalized_path_key(left) == normalized_path_key(right)
        )

    def test_negative_zero_collapses(self):
        plus = normalized_path_key((((KEY_NUMBER, 0.0), 1),))
        minus = normalized_path_key((((KEY_NUMBER, -0.0), 1),))
        assert plus == minus

    def test_embed_round_trip(self):
        key = normalized_path_key((((KEY_STRING, "k\x00v"), 3),))
        record = embed_key(key, b"\x01\x02payload")
        assert embedded_key_of(record) == key
        assert strip_embedded_key(record) == b"\x01\x02payload"


class TestPerRunSequentiality:
    def _make_runs(self, store, count=6, records=120):
        runs = []
        for run_index in range(count):
            writer = store.create_writer("run_write")
            for i in range(records):
                writer.write_record(
                    f"{run_index:02d}:{i:05d}".encode() + b"z" * 40
                )
            runs.append(writer.finish())
        return runs

    def test_loser_tree_reads_each_run_sequentially(self):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        runs = self._make_runs(store)
        options = MergeOptions(merge_kernel="loser-tree")
        out = list(
            merge_pass(store, runs, lambda r: r, "merge_read", options)
        )
        assert out == sorted(out)
        counters = device.stats.by_category["merge_read"]
        # Interleaved per-run reads are judged per stream: almost every
        # block access continues its own run's stream.
        assert counters.seq_reads == counters.reads

    def test_heap_kernel_keeps_seed_single_stream_judgment(self):
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        runs = self._make_runs(store)
        out = list(merge_pass(store, runs, lambda r: r, "merge_read"))
        assert out == sorted(out)
        counters = device.stats.by_category["merge_read"]
        # The seed's single-stream judgment sees the interleaving as
        # mostly random accesses; this is exactly what the per-run
        # streams of the loser-tree kernel fix.
        assert counters.seq_reads < counters.reads


def _sorted_doc(tree, options, memory_blocks=6, **nexsort_kwargs):
    device = BlockDevice(block_size=256)
    store = RunStore(device)
    doc = Document.from_element(store, tree)
    return nexsort(
        doc,
        SPEC,
        memory_blocks=memory_blocks,
        merge_options=options,
        **nexsort_kwargs,
    )


class TestKernelAgreement:
    """Every knob combination matches the defaults and the oracle."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_merge_sort_combos_match_oracle(self, seed):
        tree = random_tree(seed, depth=4, max_fanout=6, pad=12)
        oracle = sort_element(tree, SPEC)
        for options in ALL_OPTIONS:
            device = BlockDevice(block_size=256)
            store = RunStore(device)
            doc = Document.from_element(store, tree)
            result, report = external_merge_sort(
                doc, SPEC, memory_blocks=4, merge_options=options
            )
            assert result.to_element() == oracle, options
            if report.initial_runs:
                assert report.max_run_length >= report.avg_run_length

    @pytest.mark.parametrize("seed", [4, 5])
    def test_nexsort_combos_match_oracle(self, seed):
        tree = random_tree(seed, depth=5, max_fanout=5, pad=10)
        oracle = sort_element(tree, SPEC)
        for options in ALL_OPTIONS:
            result, _report = _sorted_doc(tree, options)
            assert result.to_element() == oracle, options

    def test_nexsort_flat_degeneration_combos_match_oracle(self):
        tree = flat_tree(400, seed=9)
        oracle = sort_element(tree, SPEC)
        for options in ALL_OPTIONS:
            result, report = _sorted_doc(
                tree, options, flat_optimization=True
            )
            assert result.to_element() == oracle, options
            assert report.flat_partial_runs > 0

    def test_all_equal_keys_are_stable_everywhere(self):
        children = [
            Element("item", {"name": "same"}, f"t{i}", [])
            for i in range(150)
        ]
        tree = Element("root", {}, "", children)
        oracle = sort_element(tree, SPEC)
        for options in ALL_OPTIONS:
            result, _report = _sorted_doc(
                tree, options, flat_optimization=True
            )
            assert result.to_element() == oracle, options
            device = BlockDevice(block_size=256)
            store = RunStore(device)
            doc = Document.from_element(store, tree)
            sorted_doc, _rep = external_merge_sort(
                doc, SPEC, memory_blocks=4, merge_options=options
            )
            assert sorted_doc.to_element() == oracle, options


class TestReportFields:
    def test_merge_sort_report_run_lengths_and_comparisons(self):
        tree = flat_tree(500, seed=13)
        device = BlockDevice(block_size=256)
        store = RunStore(device)
        doc = Document.from_element(store, tree)
        _result, report = external_merge_sort(
            doc,
            SPEC,
            memory_blocks=4,
            merge_options=MergeOptions(
                run_formation="replacement-selection",
                merge_kernel="loser-tree",
            ),
        )
        assert report.initial_runs >= 1
        assert report.avg_run_length > 0
        assert report.max_run_length >= report.avg_run_length
        assert report.merge_comparisons > 0
        assert report.stats.comparisons >= report.merge_comparisons

    def test_nexsort_report_run_lengths(self):
        tree = flat_tree(500, seed=14)
        _result, report = _sorted_doc(
            tree,
            MergeOptions(run_formation="replacement-selection"),
            flat_optimization=True,
        )
        assert report.flat_partial_runs > 0
        assert report.avg_run_length > 0
        assert report.max_run_length >= report.avg_run_length

    def test_replacement_selection_shrinks_run_count(self):
        tree = flat_tree(600, seed=15)
        counts = {}
        for formation in ("load-sort", "replacement-selection"):
            device = BlockDevice(block_size=256)
            store = RunStore(device)
            doc = Document.from_element(store, tree)
            _result, report = external_merge_sort(
                doc,
                SPEC,
                memory_blocks=4,
                merge_options=MergeOptions(run_formation=formation),
            )
            counts[formation] = report.initial_runs
        assert counts["replacement-selection"] < counts["load-sort"]
